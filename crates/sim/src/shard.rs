//! Region sharding of decision epochs: partition → score → merge.
//!
//! A monolithic decision epoch scores every epoch order against every
//! vehicle — `B x K` full Algorithm 2 sweeps — even though most pairs are
//! geographically hopeless at industry scale. With
//! [`SimulatorBuilder::sharding`] the epoch becomes a **merge of
//! cell-local batches** instead:
//!
//! 1. **Partition** — a [`ShardMap`] assigns every vehicle to the cell of
//!    its current anchor node and every epoch order to the cell of its
//!    pickup node. Flat configs ([`ShardConfig::flat`]) have one level of
//!    cells; hierarchical configs ([`ShardConfig::hierarchical`]) nest
//!    fine cells under coarse metro regions (two levels). The initial map
//!    is built once per simulator from node geometry; a
//!    [`RepartitionPolicy`](crate::sharding::RepartitionPolicy) lets each
//!    episode re-seed its own copy from accumulated demand at flush
//!    boundaries (see [`crate::sharding`]).
//! 2. **Score** — in-cell `(order, vehicle)` pairs get the full insertion
//!    sweep, grouped vehicle-shard-major into `dpdp-pool` tasks so each
//!    cell's sweep runs concurrently against its own schedule caches.
//! 3. **Merge** — cross-cell pairs go through the deterministic
//!    escalation rule: the `m` nearest foreign vehicles **in the order's
//!    parent region** (ranked by anchor→pickup distance under
//!    [`f64::total_cmp`], ties first-wins toward the lower vehicle id)
//!    are always evaluated in full, and every remaining foreign pair is
//!    evaluated **unless** the exact geometric bound
//!    ([`RoutePlanner::provably_infeasible`]) proves that no insertion
//!    can meet the order's deadline, in which case the pair's known
//!    output (`best: None`, exact `d_{t,k}`) is emitted without the
//!    sweep. Under a flat map the whole fleet is one region, so the rule
//!    degenerates to the classic `m`-nearest-foreign escalation;
//!    hierarchically, cross-**region** pairs never consume escalation
//!    slots — they rely on the exact bound alone, which is what makes the
//!    sweep scale with cell size instead of fleet size.
//!
//! **Determinism guarantee.** A pruned pair's output is *bit-identical* to
//! what the full sweep would have produced (the bound is conservative and
//! gated on metric networks), every evaluated cell lands in a pre-indexed
//! slot of the plan matrix, and the classification itself never reads
//! results — so episodes are bit-identical for **any** shard layout, any
//! escalation width, any re-partition cadence and any thread count.
//! `tests/batch_parity.rs` and `tests/repartition.rs` assert this
//! end-to-end for every built-in policy; only wall time moves.
//!
//! [`SimulatorBuilder::sharding`]: crate::simulator::SimulatorBuilder::sharding
//! [`ShardConfig::flat`]: crate::sharding::ShardConfig::flat
//! [`ShardConfig::hierarchical`]: crate::sharding::ShardConfig::hierarchical
//! [`RoutePlanner::provably_infeasible`]: dpdp_routing::RoutePlanner::provably_infeasible

use dpdp_net::{NodeId, Order, ShardMap, TimeDelta, TimePoint};
use dpdp_pool::ThreadPool;
use dpdp_routing::{PruneProbe, RoutePlanner, VehicleView};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sharding parameters a [`Simulator`](crate::simulator::Simulator) hands
/// to every [`DecisionBatch`](crate::batch::DecisionBatch).
#[derive(Debug, Clone)]
pub(crate) struct ShardContext {
    /// The node → region partition (built once per simulator).
    pub(crate) map: Arc<ShardMap>,
    /// Escalation width `m`: the number of nearest foreign vehicles per
    /// order that are always evaluated in full.
    pub(crate) escalation: usize,
}

/// Work accounting of one epoch's sharded sweep (initial `B x K` matrix
/// plus any per-commit column deltas), surfaced through
/// [`EpochInfo`](crate::observer::EpochInfo) and
/// [`DecisionBatch::shard_stats`](crate::batch::DecisionBatch::shard_stats).
///
/// These counters describe *work*, not outcomes: they vary with the shard
/// count and escalation width while the episode's decisions do not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Total `(order, vehicle)` cells considered.
    pub cells: usize,
    /// Cells that ran the full Algorithm 2 insertion sweep.
    pub evaluated: usize,
    /// Cross-shard cells skipped through the exact infeasibility bound.
    pub pruned: usize,
    /// Cross-shard cells evaluated in full (m-nearest escalation, or the
    /// bound could not rule them out).
    pub escalated: usize,
}

impl ShardStats {
    /// Fraction of cells pruned (0 when no cells were considered).
    pub fn pruned_fraction(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.pruned as f64 / self.cells as f64
        }
    }
}

/// The classified `B x K` sweep of one epoch: which cells need the full
/// insertion sweep (vehicle-shard-major, pre-indexed) and which are pruned.
#[derive(Debug)]
pub(crate) struct SweepPlan {
    /// `(order_index, vehicle_index)` cells to evaluate in full, grouped
    /// vehicle-shard-major (all of one region's vehicles are contiguous,
    /// so pool chunks mostly stay inside one shard's caches).
    pub(crate) work: Vec<(u32, u32)>,
    /// Work accounting for the whole matrix.
    pub(crate) stats: ShardStats,
}

/// Reusable classification buffers for [`plan_sweep`] — part of the
/// per-episode [`EpochScratch`](crate::batch::EpochScratch) arena. Every
/// vector is cleared (capacity retained, never freed) at the start of each
/// call, so steady-state epochs classify without touching the allocator.
///
/// The one cross-call invariant is `node_slot`: a dense node → anchor-slot
/// table sized to the network, all entries `u32::MAX` between calls.
/// [`plan_sweep`] resets only the entries it touched (via the `anchors`
/// list) on exit, so the reset is O(distinct anchors), not O(nodes).
#[derive(Debug, Default)]
pub(crate) struct SweepBuffers {
    /// Shard of each vehicle's anchor node.
    vehicle_shard: Vec<u32>,
    /// Shard of each epoch order's pickup node.
    order_shard: Vec<u32>,
    /// Vehicle indices grouped shard-major (counting sort output).
    vehicles_by_shard: Vec<u32>,
    /// Counting-sort bucket offsets (`num_shards + 1` entries).
    buckets: Vec<u32>,
    /// Counting-sort write cursors.
    cursor: Vec<u32>,
    /// End offset of each region's run in `vehicles_by_shard`.
    region_end: Vec<usize>,
    /// Dense node → anchor-slot table; all `u32::MAX` between calls.
    node_slot: Vec<u32>,
    /// Distinct anchor nodes of this epoch, in first-seen vehicle order.
    anchors: Vec<NodeId>,
    /// Anchor slot of each vehicle.
    vehicle_slot: Vec<u32>,
    /// Pickup node of each epoch order (the batched-kernel target list).
    pickups: Vec<NodeId>,
    /// Anchor-major distance memo: `dist[slot * b + i]` = anchor→pickup km.
    dist: Vec<f64>,
    /// Travel times of `dist`, same layout.
    leg: Vec<TimeDelta>,
    /// Parent region of each epoch order's shard.
    order_region: Vec<usize>,
    /// Per-order prune probes (factored deadline bound).
    probes: Vec<PruneProbe>,
    /// Escalation marks: `esc[i * m ..]` = order `i`'s escalated vehicles.
    esc: Vec<u32>,
    /// Running top-m selection buffer for the escalation ranking.
    topm: Vec<(f64, u32)>,
    /// Earliest active anchor time per cell.
    cell_min_time: Vec<Option<TimePoint>>,
    /// Distinct anchor slots per cell.
    slots_by_cell: Vec<Vec<u32>>,
    /// Slot-dedup mask for `slots_by_cell`.
    slot_listed: Vec<bool>,
}

/// Classifies every `(order, vehicle)` cell of an epoch.
///
/// Runs serially before the parallel sweep (distance lookups only, no
/// planning); the result depends solely on the epoch snapshot and the
/// shard configuration, never on thread scheduling.
///
/// `active` is the engine's vehicle-availability mask (`None` = all
/// available): cells of a masked vehicle — broken down mid-episode — never
/// survive classification (counted as pruned), and masked vehicles are
/// skipped by the escalation ranking so an order never "escalates" to a
/// dead truck.
pub(crate) fn plan_sweep(
    ctx: &ShardContext,
    planner: &RoutePlanner<'_>,
    views: &[VehicleView],
    epoch_orders: &[&Order],
    active: Option<&[bool]>,
    pool: &ThreadPool,
    scr: &mut SweepBuffers,
) -> SweepPlan {
    let map = &*ctx.map;
    let net = planner.network();
    let fleet = planner.fleet();
    let k_n = views.len();
    let b = epoch_orders.len();
    let is_active = |k: usize| active.is_none_or(|a| a[k]);
    scr.vehicle_shard.clear();
    scr.vehicle_shard
        .extend(views.iter().map(|v| map.shard_of(v.anchor_node) as u32));
    scr.order_shard.clear();
    scr.order_shard
        .extend(epoch_orders.iter().map(|o| map.shard_of(o.pickup) as u32));

    // Vehicle-shard-major work list: regions become contiguous runs of the
    // flat list, so the pool's chunked tasks are (mostly) shard-local.
    // Bucketed counting sort — shard counts are tiny and vehicle order
    // within a shard stays ascending (deterministic).
    let num_shards = map.num_shards();
    scr.buckets.clear();
    scr.buckets.resize(num_shards + 1, 0);
    for &s in &scr.vehicle_shard {
        scr.buckets[s as usize + 1] += 1;
    }
    for s in 0..num_shards {
        scr.buckets[s + 1] += scr.buckets[s];
    }
    scr.vehicles_by_shard.clear();
    scr.vehicles_by_shard.resize(k_n, 0);
    scr.cursor.clear();
    scr.cursor.extend_from_slice(&scr.buckets);
    for (k, &s) in scr.vehicle_shard.iter().enumerate() {
        scr.vehicles_by_shard[scr.cursor[s as usize] as usize] = k as u32;
        scr.cursor[s as usize] += 1;
    }
    // Cell ids are region-major, so each region is one contiguous run of
    // `vehicles_by_shard` — the escalation ranking scans only the order's
    // run instead of the whole fleet.
    let num_regions = map.num_regions();
    scr.region_end.clear();
    scr.region_end.resize(num_regions + 1, 0);
    for s in 0..num_shards {
        scr.region_end[map.region_of(s) + 1] = scr.buckets[s + 1] as usize;
    }
    for g in 0..num_regions {
        scr.region_end[g + 1] = scr.region_end[g + 1].max(scr.region_end[g]);
    }

    // Distance memo: vehicles cluster on far fewer anchor nodes than there
    // are vehicles (idle trucks share depots), so anchor→pickup legs are
    // looked up once per (order, anchor node) instead of once per cell —
    // on a 10k-vehicle fleet that is the difference between a sweep-bound
    // and a memo-bound classification pass. `dist` feeds the escalation
    // ranking (raw km), `leg` the prune probes (travel time). The memo is
    // anchor-major (`dist[slot * b + i]`): each anchor's row over the
    // epoch's pickups is one contiguous `distances_from` matrix scan plus
    // one fused `travel_times` conversion, entry-for-entry bit-identical
    // to the per-cell scalar lookups it replaces.
    if scr.node_slot.len() < net.nodes().len() {
        scr.node_slot.resize(net.nodes().len(), u32::MAX);
    }
    scr.anchors.clear();
    scr.vehicle_slot.clear();
    for v in views {
        let slot = &mut scr.node_slot[v.anchor_node.index()];
        if *slot == u32::MAX {
            *slot = scr.anchors.len() as u32;
            scr.anchors.push(v.anchor_node);
        }
        scr.vehicle_slot.push(*slot);
    }
    let ns = scr.anchors.len();
    scr.pickups.clear();
    scr.pickups.extend(epoch_orders.iter().map(|o| o.pickup));
    scr.dist.clear();
    scr.dist.resize(ns * b, 0.0);
    scr.leg.clear();
    scr.leg.resize(ns * b, TimeDelta::ZERO);
    for slot in 0..ns {
        let row = slot * b..(slot + 1) * b;
        net.distances_from(scr.anchors[slot], &scr.pickups, &mut scr.dist[row.clone()]);
        fleet.travel_times(&scr.dist[row.clone()], &mut scr.leg[row]);
    }
    scr.order_region.clear();
    scr.order_region
        .extend(scr.order_shard.iter().map(|&s| map.region_of(s as usize)));
    scr.probes.clear();
    scr.probes
        .extend(epoch_orders.iter().map(|o| planner.prune_probe(o)));

    // Escalation marks: per order, the m nearest foreign vehicles *within
    // the order's parent region* by anchor→pickup distance (total_cmp,
    // ties broken on the lower vehicle id — a total order, so the scan
    // order over the region's run is irrelevant). Flat maps are one
    // region, so the run is the whole fleet there; hierarchical maps never
    // spend escalation slots on cross-region vehicles. `m` is small, so a
    // running top-m scan beats sorting — `esc[i * m ..]` holds order `i`'s
    // escalated vehicle ids.
    let m = ctx.escalation.min(k_n);
    scr.esc.clear();
    scr.esc.resize(b * m, u32::MAX);
    if m > 0 {
        for i in 0..b {
            scr.topm.clear();
            let run = &scr.vehicles_by_shard
                [scr.region_end[scr.order_region[i]]..scr.region_end[scr.order_region[i] + 1]];
            for &k in run {
                let ku = k as usize;
                if scr.vehicle_shard[ku] == scr.order_shard[i] || !is_active(ku) {
                    continue;
                }
                let d = scr.dist[scr.vehicle_slot[ku] as usize * b + i];
                // Insert into the small sorted top-m buffer; strict
                // ordering by (distance, id) keeps ties deterministic.
                let pos = scr
                    .topm
                    .iter()
                    .position(|&(bd, bk)| d.total_cmp(&bd).then(k.cmp(&bk)).is_lt())
                    .unwrap_or(scr.topm.len());
                if pos < m {
                    if scr.topm.len() == m {
                        scr.topm.pop();
                    }
                    scr.topm.insert(pos, (d, k));
                }
            }
            for (slot, &(_, k)) in scr.topm.iter().enumerate() {
                scr.esc[i * m + slot] = k;
            }
        }
    }

    let mut stats = ShardStats {
        cells: b * k_n,
        ..ShardStats::default()
    };
    // Cell-level aggregates for the group prune below: the earliest anchor
    // time over each cell's active vehicles, and the cell's distinct
    // anchor slots (an anchor node maps to exactly one cell, so the slot
    // lists partition `anchors`). `prunes` is monotone non-decreasing in
    // both arguments — pushing the anchor time later or the pickup leg
    // longer can only lose more slack — so a cell that prunes at its
    // (min time, min leg) corner prunes every one of its vehicles
    // individually. The group skip therefore dismisses exactly the cells
    // the per-vehicle pass would, without touching their vehicles: the
    // classification drops from `O(B x K)` probe checks to
    // `O(B x (shards + anchors))` plus per-vehicle checks only inside
    // cells the bound could not dismiss wholesale.
    scr.cell_min_time.clear();
    scr.cell_min_time.resize(num_shards, None);
    for cell in scr.slots_by_cell.iter_mut() {
        cell.clear();
    }
    if scr.slots_by_cell.len() < num_shards {
        scr.slots_by_cell.resize_with(num_shards, Vec::new);
    }
    scr.slot_listed.clear();
    scr.slot_listed.resize(ns, false);
    for (ku, view) in views.iter().enumerate() {
        if !is_active(ku) {
            continue;
        }
        let s = scr.vehicle_shard[ku] as usize;
        let t = view.anchor_time;
        if scr.cell_min_time[s].is_none_or(|cur| t < cur) {
            scr.cell_min_time[s] = Some(t);
        }
        let slot = scr.vehicle_slot[ku];
        if !scr.slot_listed[slot as usize] {
            scr.slot_listed[slot as usize] = true;
            scr.slots_by_cell[s].push(slot);
        }
    }
    // Classification is pure per cell (it never reads sweep results), so
    // it fans out one pool task per vehicle cell; concatenating the task
    // outputs in cell order reproduces the serial shard-major work list
    // exactly, at any thread count.
    let vehicle_shard = &scr.vehicle_shard;
    let order_shard = &scr.order_shard;
    let vehicles_by_shard = &scr.vehicles_by_shard;
    let buckets = &scr.buckets;
    let vehicle_slot = &scr.vehicle_slot;
    let leg = &scr.leg;
    let esc = &scr.esc;
    let probes = &scr.probes;
    let cell_min_time_ref = &scr.cell_min_time;
    let slots_by_cell_ref = &scr.slots_by_cell;
    let tasks = pool.par_map(num_shards, |s| {
        let run = &vehicles_by_shard[buckets[s] as usize..buckets[s + 1] as usize];
        let mut work = Vec::new();
        let (mut evaluated, mut escalated) = (0usize, 0usize);
        // Orders the cell-level bound could not dismiss: only these see
        // the per-vehicle checks (ascending order index, so the emitted
        // work per vehicle keeps the full pass's order).
        let mut live: Vec<u32> = Vec::new();
        for i in 0..b {
            let group_pruned = order_shard[i] != s as u32
                && !esc[i * m..(i + 1) * m]
                    .iter()
                    .any(|&e| e != u32::MAX && vehicle_shard[e as usize] == s as u32)
                && match cell_min_time_ref[s] {
                    Some(t0) => {
                        let mut min_leg: Option<TimeDelta> = None;
                        for &slot in &slots_by_cell_ref[s] {
                            let l = leg[slot as usize * b + i];
                            if min_leg.is_none_or(|cur| l < cur) {
                                min_leg = Some(l);
                            }
                        }
                        // `slots_by_cell` is non-empty whenever
                        // `cell_min_time` is set (both fed by the same
                        // active-vehicle scan).
                        min_leg.map(|l| probes[i].prunes(t0, l)).unwrap_or(true)
                    }
                    // No active vehicle anchors in this cell.
                    None => true,
                };
            if !group_pruned {
                live.push(i as u32);
            }
        }
        for &k in run {
            let ku = k as usize;
            if !is_active(ku) {
                continue;
            }
            let anchor_time = views[ku].anchor_time;
            let slot = vehicle_slot[ku] as usize;
            for &iu in &live {
                let i = iu as usize;
                if vehicle_shard[ku] == order_shard[i] {
                    evaluated += 1;
                } else if esc[i * m..(i + 1) * m].contains(&k)
                    || !probes[i].prunes(anchor_time, leg[slot * b + i])
                {
                    evaluated += 1;
                    escalated += 1;
                } else {
                    continue;
                }
                work.push((iu, k));
            }
        }
        (work, evaluated, escalated)
    });
    let mut work = Vec::with_capacity(tasks.iter().map(|t| t.0.len()).sum());
    for (cell_work, evaluated, escalated) in tasks {
        work.extend(cell_work);
        stats.evaluated += evaluated;
        stats.escalated += escalated;
    }
    // Every cell is either evaluated or pruned; escalated is a subset of
    // evaluated.
    stats.pruned = stats.cells - stats.evaluated;
    // Restore the node_slot invariant (all u32::MAX) by resetting only the
    // entries this call touched.
    for &a in &scr.anchors {
        scr.node_slot[a.index()] = u32::MAX;
    }
    SweepPlan { work, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, Node, NodeId, Order, OrderId, Point, RoadNetwork, ShardPolicy, TimeDelta,
        TimePoint,
    };

    /// Two clusters 200 km apart; deadlines allow in-cluster service only.
    fn setup() -> (RoadNetwork, FleetConfig, Vec<Order>) {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(5.0, 0.0)),
            Node::factory(NodeId(2), Point::new(10.0, 0.0)),
            Node::depot(NodeId(3), Point::new(200.0, 0.0)),
            Node::factory(NodeId(4), Point::new(205.0, 0.0)),
            Node::factory(NodeId(5), Point::new(210.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            2,
            &[NodeId(0), NodeId(3)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        // One order per cluster, one hour of slack: served locally in
        // minutes, unreachable from the other cluster (200 km ≈ 3.3 h).
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                1.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(9.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(4),
                NodeId(5),
                1.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(9.0),
            )
            .unwrap(),
        ];
        (net, fleet, orders)
    }

    /// Epoch-time views: the simulator advances every vehicle to the
    /// decision instant before a batch forms, so anchor times sit at `now`
    /// (a vehicle anchored in the past could pre-position and the bound
    /// would rightly not prune it).
    fn views_at(fleet: &FleetConfig, now: TimePoint) -> Vec<VehicleView> {
        fleet
            .vehicles
            .iter()
            .map(|v| {
                let mut view = VehicleView::idle_at_depot(v.id, v.depot);
                view.anchor_time = now;
                view
            })
            .collect()
    }

    #[test]
    fn cross_cluster_cells_prune_and_escalation_overrides() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let epoch: Vec<&Order> = orders.iter().collect();

        // No escalation: both cross-cluster cells prune.
        let ctx = ShardContext {
            map: Arc::clone(&map),
            escalation: 0,
        };
        let sweep = plan_sweep(
            &ctx,
            &planner,
            &views,
            &epoch,
            None,
            &ThreadPool::new(1),
            &mut SweepBuffers::default(),
        );
        assert_eq!(sweep.stats.cells, 4);
        assert_eq!(sweep.stats.pruned, 2);
        assert_eq!(sweep.stats.evaluated, 2);
        assert_eq!(sweep.stats.escalated, 0);
        assert_eq!(sweep.work.len(), 2);
        // Exactly the in-shard diagonal survives.
        assert!(sweep.work.contains(&(0, 0)));
        assert!(sweep.work.contains(&(1, 1)));

        // Escalation m = 1 forces the nearest foreign vehicle back in.
        let ctx = ShardContext { map, escalation: 1 };
        let sweep = plan_sweep(
            &ctx,
            &planner,
            &views,
            &epoch,
            None,
            &ThreadPool::new(1),
            &mut SweepBuffers::default(),
        );
        assert_eq!(sweep.stats.pruned, 0);
        assert_eq!(sweep.stats.escalated, 2);
        assert_eq!(sweep.work.len(), 4);
    }

    #[test]
    fn loose_deadlines_keep_every_cell_evaluated() {
        let (net, fleet, mut orders) = setup();
        for o in &mut orders {
            o.deadline = TimePoint::from_hours(48.0);
        }
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let ctx = ShardContext { map, escalation: 0 };
        let epoch: Vec<&Order> = orders.iter().collect();
        let sweep = plan_sweep(
            &ctx,
            &planner,
            &views,
            &epoch,
            None,
            &ThreadPool::new(1),
            &mut SweepBuffers::default(),
        );
        assert_eq!(sweep.stats.pruned, 0);
        assert_eq!(sweep.stats.evaluated, 4);
        assert_eq!(sweep.stats.escalated, 2);
        assert_eq!(sweep.stats.pruned_fraction(), 0.0);
    }

    #[test]
    fn hierarchical_escalation_stays_inside_the_parent_region() {
        // Four clusters in two metro regions: A = {x≈0, x≈40}, B =
        // {x≈1000, x≈1040}. At 60 km/h with half an hour of slack only the
        // in-cell vehicle can serve an order, so every cross-cell cell is
        // prunable — whatever survives beyond the diagonal is escalation.
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::depot(NodeId(2), Point::new(40.0, 0.0)),
            Node::factory(NodeId(3), Point::new(41.0, 0.0)),
            Node::depot(NodeId(4), Point::new(1000.0, 0.0)),
            Node::factory(NodeId(5), Point::new(1001.0, 0.0)),
            Node::depot(NodeId(6), Point::new(1040.0, 0.0)),
            Node::factory(NodeId(7), Point::new(1041.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            4,
            &[NodeId(0), NodeId(2), NodeId(4), NodeId(6)],
            10.0,
            500.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        // One order picked up in cell A1 (classification keys on the
        // pickup node; the delivery in A2 leaves the cell assignment
        // untouched).
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(3),
            1.0,
            TimePoint::from_hours(8.0),
            TimePoint::from_hours(8.5),
        )
        .unwrap()];
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(
            &net,
            4,
            ShardPolicy::Hierarchical {
                regions: 2,
                cells_per_region: 2,
                iterations: 8,
            },
            7,
        ));
        assert_eq!(map.num_regions(), 2);
        let epoch: Vec<&Order> = orders.iter().collect();

        // m = 3 would reach every foreign vehicle under a flat map; under
        // the hierarchical map only the same-region foreign vehicle (A2)
        // may consume an escalation slot — region B's two vehicles must
        // stay pruned however wide the escalation gets.
        let ctx = ShardContext {
            map: Arc::clone(&map),
            escalation: 3,
        };
        let sweep = plan_sweep(
            &ctx,
            &planner,
            &views,
            &epoch,
            None,
            &ThreadPool::new(1),
            &mut SweepBuffers::default(),
        );
        assert_eq!(sweep.stats.cells, 4);
        assert_eq!(sweep.stats.evaluated, 2, "in-cell + same-region escalation");
        assert_eq!(sweep.stats.escalated, 1);
        assert_eq!(
            sweep.stats.pruned, 2,
            "cross-region vehicles must not consume escalation slots"
        );
    }

    #[test]
    fn work_list_is_vehicle_shard_major() {
        let (net, fleet, orders) = setup();
        let planner = RoutePlanner::new(&net, &fleet, &orders);
        let views = views_at(&fleet, TimePoint::from_hours(8.0));
        let map = Arc::new(ShardMap::build(&net, 2, ShardPolicy::default(), 7));
        let shard_of = |k: u32| map.shard_of(views[k as usize].anchor_node);
        let ctx = ShardContext {
            map: Arc::clone(&map),
            escalation: 2,
        };
        let epoch: Vec<&Order> = orders.iter().collect();
        let sweep = plan_sweep(
            &ctx,
            &planner,
            &views,
            &epoch,
            None,
            &ThreadPool::new(1),
            &mut SweepBuffers::default(),
        );
        let shards: Vec<usize> = sweep.work.iter().map(|&(_, k)| shard_of(k)).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "work must group by vehicle shard");
    }
}
