//! The unified sharding surface: [`ShardConfig`] describes *how* decision
//! epochs are partitioned (flat cells or two-level regions → cells), how
//! wide the cross-cell escalation rule is, and *when* the partition is
//! re-seeded from live demand mid-episode ([`RepartitionPolicy`]).
//!
//! One validated value replaces what used to be three loose
//! `SimulatorBuilder` knobs (`num_shards` / `shard_policy` /
//! `shard_escalation`): build a config with [`ShardConfig::flat`] or
//! [`ShardConfig::hierarchical`], refine it with
//! [`ShardConfig::escalation`] / [`ShardConfig::repartition`], and hand it
//! to [`SimulatorBuilder::sharding`].
//!
//! ```
//! # use dpdp_sim::{RepartitionPolicy, ShardConfig};
//! let cfg = ShardConfig::hierarchical(4, 8)
//!     .expect("positive region/cell counts")
//!     .escalation(3)
//!     .repartition(RepartitionPolicy::periodic(4))
//!     .expect("positive epoch period");
//! assert_eq!(cfg.num_shards(), 32);
//! ```
//!
//! Every knob here is a **work knob**: episode decisions are bit-identical
//! for any shard layout, escalation width, re-partition cadence and thread
//! count (see [`crate::shard`] for why). Only wall time moves.
//!
//! [`SimulatorBuilder::sharding`]: crate::simulator::SimulatorBuilder::sharding

use crate::shard::ShardContext;
use crate::simulator::{SimBuildError, DEFAULT_SHARD_ESCALATION};
use dpdp_net::{Order, RoadNetwork, ShardMap, ShardPolicy};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// When (if ever) an episode re-seeds its shard map from live demand.
///
/// Re-partitioning only ever happens **at flush boundaries** and is a pure
/// function of the demand stream decided so far, so a fixed seed stays
/// bit-identical across thread counts and escalation widths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum RepartitionPolicy {
    /// Keep the initial (geometry-seeded) partition for the whole episode.
    #[default]
    Never,
    /// Every `every_epochs`-th flush boundary, re-run the partition's
    /// k-means with centroid updates weighted by the quantity-weighted
    /// pickup demand observed since the previous re-partition (the same
    /// accumulation `dpdp-core`'s `DemandRecorder` observer performs).
    /// Skipped until at least `min_orders` orders accumulated, so quiet
    /// stretches keep their partition.
    Periodic {
        /// Flush boundaries between re-seeds (must be ≥ 1).
        every_epochs: usize,
        /// Minimum orders observed since the last re-seed before another
        /// one fires (0 = always).
        min_orders: usize,
    },
}

impl RepartitionPolicy {
    /// Periodic re-seeding every `every_epochs` flushes with a small
    /// default demand floor (8 orders).
    pub fn periodic(every_epochs: usize) -> RepartitionPolicy {
        RepartitionPolicy::Periodic {
            every_epochs,
            min_orders: 8,
        }
    }
}

/// A validated sharding configuration for
/// [`SimulatorBuilder::sharding`](crate::simulator::SimulatorBuilder::sharding):
/// partition shape, escalation width and re-partition cadence in one value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardConfig {
    policy: ShardPolicy,
    num_shards: usize,
    escalation: usize,
    repartition: RepartitionPolicy,
}

impl Default for ShardConfig {
    /// Unsharded: one flat cell, i.e. the plain fleet scan.
    fn default() -> Self {
        ShardConfig {
            policy: ShardPolicy::default(),
            num_shards: 1,
            escalation: DEFAULT_SHARD_ESCALATION,
            repartition: RepartitionPolicy::Never,
        }
    }
}

impl ShardConfig {
    /// A flat partition into `num_shards` seeded k-means cells (1 =
    /// unsharded fleet scan).
    ///
    /// # Errors
    /// [`SimBuildError::ZeroShards`] when `num_shards == 0`.
    pub fn flat(num_shards: usize) -> Result<ShardConfig, SimBuildError> {
        Self::flat_with(num_shards, ShardPolicy::default())
    }

    /// A flat partition under an explicit policy
    /// ([`ShardPolicy::Grid`] or [`ShardPolicy::KMeans`]).
    ///
    /// # Errors
    /// [`SimBuildError::ZeroShards`] when `num_shards == 0`;
    /// [`SimBuildError::InvalidSharding`] when handed
    /// [`ShardPolicy::Hierarchical`] (use [`ShardConfig::hierarchical`]).
    pub fn flat_with(num_shards: usize, policy: ShardPolicy) -> Result<ShardConfig, SimBuildError> {
        if num_shards == 0 {
            return Err(SimBuildError::ZeroShards);
        }
        if matches!(policy, ShardPolicy::Hierarchical { .. }) {
            return Err(SimBuildError::InvalidSharding {
                reason: "use ShardConfig::hierarchical for two-level partitions".into(),
            });
        }
        Ok(ShardConfig {
            policy,
            num_shards,
            ..ShardConfig::default()
        })
    }

    /// A two-level partition: `regions` coarse metro regions, each split
    /// into `cells_per_region` fine cells (`regions * cells_per_region`
    /// shards total). Cross-cell escalation stays inside the parent
    /// region; cross-region pairs rely on the exact geometric prune.
    ///
    /// # Errors
    /// [`SimBuildError::InvalidSharding`] when either count is zero.
    pub fn hierarchical(
        regions: usize,
        cells_per_region: usize,
    ) -> Result<ShardConfig, SimBuildError> {
        if regions == 0 || cells_per_region == 0 {
            return Err(SimBuildError::InvalidSharding {
                reason: format!(
                    "hierarchical sharding needs positive counts, got {regions} regions x \
                     {cells_per_region} cells"
                ),
            });
        }
        Ok(ShardConfig {
            policy: ShardPolicy::Hierarchical {
                regions,
                cells_per_region,
                iterations: 8,
            },
            num_shards: regions * cells_per_region,
            ..ShardConfig::default()
        })
    }

    /// Sets the escalation width `m`: the `m` nearest same-region foreign
    /// vehicles per order that are always evaluated in full (default
    /// [`DEFAULT_SHARD_ESCALATION`]; 0 = prune-only). Purely a work knob —
    /// results are bit-identical for every `m`.
    pub fn escalation(mut self, m: usize) -> ShardConfig {
        self.escalation = m;
        self
    }

    /// Sets the mid-episode re-partition cadence (default
    /// [`RepartitionPolicy::Never`]).
    ///
    /// # Errors
    /// [`SimBuildError::InvalidSharding`] for
    /// [`RepartitionPolicy::Periodic`] with `every_epochs == 0`.
    pub fn repartition(mut self, policy: RepartitionPolicy) -> Result<ShardConfig, SimBuildError> {
        if let RepartitionPolicy::Periodic { every_epochs, .. } = policy {
            if every_epochs == 0 {
                return Err(SimBuildError::InvalidSharding {
                    reason: "re-partition cadence must be at least 1 epoch".into(),
                });
            }
        }
        self.repartition = policy;
        Ok(self)
    }

    /// Total number of shards (cells): `num_shards` for flat configs,
    /// `regions * cells_per_region` for hierarchical ones.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The partition policy the config builds maps with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The escalation width `m`.
    pub fn escalation_width(&self) -> usize {
        self.escalation
    }

    /// The re-partition cadence.
    pub fn repartition_policy(&self) -> RepartitionPolicy {
        self.repartition
    }

    /// Builds the initial [`ShardContext`] for an episode, or `None` for
    /// the unsharded single-cell config.
    pub(crate) fn initial_context(&self, net: &RoadNetwork, seed: u64) -> Option<ShardContext> {
        (self.num_shards > 1).then(|| ShardContext {
            map: Arc::new(ShardMap::build(net, self.num_shards, self.policy, seed)),
            escalation: self.escalation,
        })
    }
}

/// Episode-local sharding state: the current [`ShardContext`] plus the
/// demand accumulator driving mid-episode re-partitioning.
///
/// Both episode loops ([`Simulator::run_reference`] and the event engine)
/// create one per episode and drive it identically: `observe` every epoch
/// order, then `maybe_repartition` at the flush boundary **before** the
/// epoch's batch forms. Because the demand stream decided so far is
/// bit-identical across thread counts, escalation widths and shard
/// layouts, so is every re-seeded map — the partition stays a work detail.
///
/// [`Simulator::run_reference`]: crate::simulator::Simulator::run_reference
pub(crate) struct ShardRuntime {
    ctx: Option<ShardContext>,
    config: ShardConfig,
    seed: u64,
    /// Quantity-weighted pickup demand per node since the last re-seed.
    demand: Vec<f64>,
    orders_seen: usize,
    epochs_since: usize,
    repartitions: usize,
}

impl ShardRuntime {
    pub(crate) fn new(
        config: &ShardConfig,
        initial: Option<&ShardContext>,
        seed: u64,
        num_nodes: usize,
    ) -> ShardRuntime {
        let track_demand = initial.is_some()
            && !matches!(config.repartition, RepartitionPolicy::Never)
            && !matches!(config.policy, ShardPolicy::Grid);
        ShardRuntime {
            ctx: initial.cloned(),
            config: config.clone(),
            seed,
            demand: if track_demand {
                vec![0.0; num_nodes]
            } else {
                Vec::new()
            },
            orders_seen: 0,
            epochs_since: 0,
            repartitions: 0,
        }
    }

    /// The context the next [`DecisionBatch`](crate::batch::DecisionBatch)
    /// should score under.
    pub(crate) fn context(&self) -> Option<ShardContext> {
        self.ctx.clone()
    }

    /// Accumulates one epoch order's pickup demand (quantity-weighted,
    /// mirroring `dpdp-core`'s `DemandRecorder`). Serial, in epoch order —
    /// deterministic by construction.
    pub(crate) fn observe(&mut self, order: &Order) {
        if self.demand.is_empty() {
            return;
        }
        self.demand[order.pickup.index()] += order.quantity;
        self.orders_seen += 1;
    }

    /// At a flush boundary: re-seeds the shard map from the accumulated
    /// demand when the cadence and demand floor are met. Returns whether a
    /// re-partition fired (surfaced as
    /// [`EpochInfo::repartitioned`](crate::observer::EpochInfo::repartitioned)).
    pub(crate) fn maybe_repartition(&mut self, net: &RoadNetwork) -> bool {
        if self.demand.is_empty() {
            return false;
        }
        let RepartitionPolicy::Periodic {
            every_epochs,
            min_orders,
        } = self.config.repartition
        else {
            return false;
        };
        self.epochs_since += 1;
        if self.epochs_since < every_epochs || self.orders_seen < min_orders.max(1) {
            return false;
        }
        let ctx = self.ctx.as_mut().expect("demand tracked only when sharded");
        // Derive a fresh deterministic seed per re-seed so consecutive
        // re-partitions explore different initialisations.
        let derived = self
            .seed
            .wrapping_add((self.repartitions as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        ctx.map = Arc::new(ShardMap::build_weighted(
            net,
            self.config.num_shards,
            self.config.policy,
            derived,
            &self.demand,
        ));
        self.demand.fill(0.0);
        self.orders_seen = 0;
        self.epochs_since = 0;
        self.repartitions += 1;
        true
    }

    /// Number of mid-episode re-partitions fired so far.
    #[cfg(test)]
    pub(crate) fn repartitions(&self) -> usize {
        self.repartitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{Node, NodeId, OrderId, Point, TimePoint};

    fn two_cluster_net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::depot(NodeId(2), Point::new(100.0, 100.0)),
            Node::factory(NodeId(3), Point::new(101.0, 100.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn constructors_validate() {
        assert_eq!(ShardConfig::flat(0).unwrap_err(), SimBuildError::ZeroShards);
        assert!(matches!(
            ShardConfig::hierarchical(0, 4).unwrap_err(),
            SimBuildError::InvalidSharding { .. }
        ));
        assert!(matches!(
            ShardConfig::hierarchical(4, 0).unwrap_err(),
            SimBuildError::InvalidSharding { .. }
        ));
        assert!(matches!(
            ShardConfig::flat_with(
                2,
                ShardPolicy::Hierarchical {
                    regions: 1,
                    cells_per_region: 2,
                    iterations: 8
                }
            )
            .unwrap_err(),
            SimBuildError::InvalidSharding { .. }
        ));
        assert!(matches!(
            ShardConfig::flat(2)
                .unwrap()
                .repartition(RepartitionPolicy::Periodic {
                    every_epochs: 0,
                    min_orders: 0
                }),
            Err(SimBuildError::InvalidSharding { .. })
        ));
        let cfg = ShardConfig::hierarchical(3, 5).unwrap().escalation(7);
        assert_eq!(cfg.num_shards(), 15);
        assert_eq!(cfg.escalation_width(), 7);
        assert_eq!(cfg.repartition_policy(), RepartitionPolicy::Never);
    }

    #[test]
    fn default_config_is_unsharded() {
        let cfg = ShardConfig::default();
        assert_eq!(cfg.num_shards(), 1);
        assert!(cfg.initial_context(&two_cluster_net(), 7).is_none());
        assert_eq!(cfg, ShardConfig::flat(1).unwrap());
    }

    #[test]
    fn runtime_repartitions_on_cadence_and_demand_floor() {
        let net = two_cluster_net();
        let cfg = ShardConfig::flat(2)
            .unwrap()
            .repartition(RepartitionPolicy::Periodic {
                every_epochs: 2,
                min_orders: 2,
            })
            .unwrap();
        let ctx = cfg.initial_context(&net, 7);
        let mut rt = ShardRuntime::new(&cfg, ctx.as_ref(), 7, net.nodes().len());
        let order = |pickup: u32| {
            Order::new(
                OrderId(0),
                NodeId(pickup),
                NodeId(if pickup == 1 { 3 } else { 1 }),
                1.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(12.0),
            )
            .unwrap()
        };
        // Epoch 1: cadence not yet met.
        rt.observe(&order(1));
        rt.observe(&order(3));
        assert!(!rt.maybe_repartition(&net));
        // Epoch 2: cadence met, demand floor met → fires.
        rt.observe(&order(1));
        assert!(rt.maybe_repartition(&net));
        assert_eq!(rt.repartitions(), 1);
        assert!(rt.context().is_some());
        // Counters reset: two quiet epochs do not fire (no demand).
        assert!(!rt.maybe_repartition(&net));
        assert!(!rt.maybe_repartition(&net));
        assert_eq!(rt.repartitions(), 1);
    }

    #[test]
    fn unsharded_or_never_runtime_is_inert() {
        let net = two_cluster_net();
        for cfg in [ShardConfig::flat(1).unwrap(), ShardConfig::flat(2).unwrap()] {
            let ctx = cfg.initial_context(&net, 7);
            let mut rt = ShardRuntime::new(&cfg, ctx.as_ref(), 7, net.nodes().len());
            assert!(!rt.maybe_repartition(&net));
        }
    }
}
