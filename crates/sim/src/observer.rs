//! Episode observation hooks.
//!
//! A [`SimObserver`] watches a simulation from the outside: it is notified
//! when an episode starts, when each decision epoch opens, after every
//! decision, and when the episode ends. Experience recording (RL replay,
//! capacity distributions, convergence curves) plugs in here instead of
//! being hard-wired into dispatcher internals — the dispatcher decides,
//! observers account.
//!
//! Guaranteed call order, enforced by the event engine behind
//! [`Simulator::run_observed`](crate::simulator::Simulator::run_observed):
//!
//! ```text
//! on_episode_begin
//!   (on_epoch  on_decision*        // one on_epoch per dispatch_batch call
//!    | on_decision                 // horizon-dropped / cancelled-pending
//!    | on_disruption)*             // cancellations, breakdowns, recoveries
//! on_episode_end
//! ```
//!
//! Disruption events interleave with epochs in simulation-time order: an
//! [`on_disruption`](SimObserver::on_disruption) call lands after every
//! epoch that precedes it and before every epoch that follows it.

use crate::batch::Decision;
use crate::metrics::{AssignmentRecord, EpisodeResult};
use crate::shard::ShardStats;
use dpdp_net::{FleetConfig, Instance, OrderId, RoadNetwork, TimePoint, VehicleId};
use dpdp_routing::{PlannerOutput, VehicleView};

/// One decision epoch, as announced to observers before its decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochInfo {
    /// Zero-based index of the epoch within the episode.
    pub index: usize,
    /// Wall-clock decision time shared by the epoch's orders.
    pub now: TimePoint,
    /// Index of the epoch's time interval on the instance grid.
    pub interval: usize,
    /// Number of orders flushed at this epoch.
    pub num_orders: usize,
    /// Number of geographic shards the epoch is scored with (1 when the
    /// simulator runs unsharded).
    pub num_shards: usize,
    /// Work accounting of the epoch's initial sharded `B x K` sweep (all
    /// zero when unsharded; commit deltas applied *during* the dispatch
    /// call are visible through `DecisionBatch::shard_stats` instead).
    /// These counters vary with the shard configuration while the epoch's
    /// decisions do not.
    pub shards: ShardStats,
    /// Whether the shard map was re-seeded from accumulated demand at this
    /// flush boundary (see `RepartitionPolicy`; always `false` when
    /// unsharded or under `RepartitionPolicy::Never`). Like the work
    /// counters, this varies with the shard configuration while the
    /// epoch's decisions do not.
    pub repartitioned: bool,
}

/// Everything an observer may inspect about one committed decision.
#[derive(Debug)]
pub struct DecisionRecord<'a> {
    /// The dispatcher's (validated) decision.
    pub decision: &'a Decision,
    /// The assignment log entry the simulator recorded.
    pub assignment: &'a AssignmentRecord,
    /// The chosen vehicle's view *before* accepting the order, when
    /// assigned.
    pub view: Option<&'a VehicleView>,
    /// The validated Algorithm 2 output the assignment committed, when
    /// assigned.
    pub plan: Option<&'a PlannerOutput>,
    /// The fleet configuration.
    pub fleet: &'a FleetConfig,
    /// The road network.
    pub net: &'a RoadNetwork,
}

/// How an applied [`OrderCancelled`] event found its order.
///
/// [`OrderCancelled`]: crate::event::SimEvent::OrderCancelled
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The order was still buffered: it never reaches a dispatcher and is
    /// logged as a [`Cancelled`](crate::batch::DecisionReason::Cancelled)
    /// rejection (the decision record flows through `on_decision`).
    BeforeDispatch,
    /// The order was assigned but its pickup was still undriven: the
    /// serving vehicle's route was shortened by surgery and the assignment
    /// revoked (no `on_decision` follows — the episode log entry is
    /// rewritten in place).
    AfterAssignment,
    /// The pickup had already been driven (or the order was already
    /// rejected): the cancellation has no effect.
    TooLate,
}

/// What a disruption event did to the episode, as announced through
/// [`SimObserver::on_disruption`].
#[derive(Debug, Clone, PartialEq)]
pub enum DisruptionKind {
    /// An order cancellation was processed.
    OrderCancelled {
        /// The cancelled order.
        order: OrderId,
        /// Where the cancellation caught the order.
        outcome: CancelOutcome,
        /// The vehicle whose route was shortened, for
        /// [`CancelOutcome::AfterAssignment`].
        vehicle: Option<VehicleId>,
    },
    /// A vehicle broke down.
    VehicleBreakdown {
        /// The broken vehicle.
        vehicle: VehicleId,
        /// Accepted-but-unpicked orders returned to the dispatch queue
        /// (each will produce a fresh decision at the next epoch it joins).
        stranded: Vec<OrderId>,
        /// Picked-up orders written off as
        /// [`VehicleLost`](crate::batch::DecisionReason::VehicleLost).
        lost: Vec<OrderId>,
    },
    /// A broken vehicle came back into service at its current anchor.
    VehicleRecovered {
        /// The recovered vehicle.
        vehicle: VehicleId,
    },
}

/// One applied disruption event, stamped with its simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct DisruptionRecord {
    /// When the event was applied.
    pub time: TimePoint,
    /// What it did.
    pub kind: DisruptionKind,
}

/// Observation hooks over one simulated episode. All methods default to
/// no-ops so observers implement only what they need.
pub trait SimObserver {
    /// Called once before any decision, with the instance being run.
    fn on_episode_begin(&mut self, _instance: &Instance) {}

    /// Called when a decision epoch opens, immediately before the epoch's
    /// single `dispatch_batch` call. Horizon-dropped epochs (no dispatch)
    /// do not produce this event.
    fn on_epoch(&mut self, _epoch: &EpochInfo) {}

    /// Called after each decision is validated and committed.
    fn on_decision(&mut self, _record: &DecisionRecord<'_>) {}

    /// Called after a disruption event (cancellation, breakdown, recovery)
    /// is applied, in simulation-time order relative to epochs.
    ///
    /// Accounting rules for observers mirroring the episode aggregates:
    /// a [`CancelOutcome::AfterAssignment`] cancellation and every `lost`
    /// order of a breakdown move one order from served to rejected
    /// (reasons `Cancelled` / `VehicleLost`); every `stranded` order
    /// un-counts one served order, whose replacement decision arrives
    /// through `on_decision` when the order is re-dispatched.
    fn on_disruption(&mut self, _record: &DisruptionRecord) {}

    /// Called once with the finished episode result.
    fn on_episode_end(&mut self, _result: &EpisodeResult) {}
}

/// An observer that counts events — useful to assert the epoch/decision
/// protocol in tests and as a minimal example implementation.
#[derive(Debug, Default, Clone)]
pub struct EventCounter {
    /// `on_episode_begin` calls seen.
    pub episodes_begun: usize,
    /// `on_epoch` calls seen.
    pub epochs: usize,
    /// `on_decision` calls seen.
    pub decisions: usize,
    /// Decisions that assigned a vehicle.
    pub assigned: usize,
    /// Cancellation events applied (any [`CancelOutcome`]).
    pub cancellations: usize,
    /// Breakdown events applied.
    pub breakdowns: usize,
    /// Recovery events applied.
    pub recoveries: usize,
    /// `on_episode_end` calls seen.
    pub episodes_ended: usize,
}

impl SimObserver for EventCounter {
    fn on_episode_begin(&mut self, _instance: &Instance) {
        self.episodes_begun += 1;
    }

    fn on_epoch(&mut self, _epoch: &EpochInfo) {
        self.epochs += 1;
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        self.decisions += 1;
        if record.decision.is_assigned() {
            self.assigned += 1;
        }
    }

    fn on_disruption(&mut self, record: &DisruptionRecord) {
        match record.kind {
            DisruptionKind::OrderCancelled { .. } => self.cancellations += 1,
            DisruptionKind::VehicleBreakdown { .. } => self.breakdowns += 1,
            DisruptionKind::VehicleRecovered { .. } => self.recoveries += 1,
        }
    }

    fn on_episode_end(&mut self, _result: &EpisodeResult) {
        self.episodes_ended += 1;
    }
}
