//! Episode observation hooks.
//!
//! A [`SimObserver`] watches a simulation from the outside: it is notified
//! when an episode starts, when each decision epoch opens, after every
//! decision, and when the episode ends. Experience recording (RL replay,
//! capacity distributions, convergence curves) plugs in here instead of
//! being hard-wired into dispatcher internals — the dispatcher decides,
//! observers account.
//!
//! Guaranteed call order, enforced by
//! [`Simulator::run_observed`](crate::simulator::Simulator::run_observed):
//!
//! ```text
//! on_episode_begin
//!   (on_epoch  on_decision*)*     // one on_epoch per dispatch_batch call
//!   on_decision*                  // horizon-dropped orders, if any
//! on_episode_end
//! ```

use crate::batch::Decision;
use crate::metrics::{AssignmentRecord, EpisodeResult};
use crate::shard::ShardStats;
use dpdp_net::{FleetConfig, Instance, RoadNetwork, TimePoint};
use dpdp_routing::{PlannerOutput, VehicleView};

/// One decision epoch, as announced to observers before its decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochInfo {
    /// Zero-based index of the epoch within the episode.
    pub index: usize,
    /// Wall-clock decision time shared by the epoch's orders.
    pub now: TimePoint,
    /// Index of the epoch's time interval on the instance grid.
    pub interval: usize,
    /// Number of orders flushed at this epoch.
    pub num_orders: usize,
    /// Number of geographic shards the epoch is scored with (1 when the
    /// simulator runs unsharded).
    pub num_shards: usize,
    /// Work accounting of the epoch's initial sharded `B x K` sweep (all
    /// zero when unsharded; commit deltas applied *during* the dispatch
    /// call are visible through `DecisionBatch::shard_stats` instead).
    /// These counters vary with the shard configuration while the epoch's
    /// decisions do not.
    pub shards: ShardStats,
}

/// Everything an observer may inspect about one committed decision.
#[derive(Debug)]
pub struct DecisionRecord<'a> {
    /// The dispatcher's (validated) decision.
    pub decision: &'a Decision,
    /// The assignment log entry the simulator recorded.
    pub assignment: &'a AssignmentRecord,
    /// The chosen vehicle's view *before* accepting the order, when
    /// assigned.
    pub view: Option<&'a VehicleView>,
    /// The validated Algorithm 2 output the assignment committed, when
    /// assigned.
    pub plan: Option<&'a PlannerOutput>,
    /// The fleet configuration.
    pub fleet: &'a FleetConfig,
    /// The road network.
    pub net: &'a RoadNetwork,
}

/// Observation hooks over one simulated episode. All methods default to
/// no-ops so observers implement only what they need.
pub trait SimObserver {
    /// Called once before any decision, with the instance being run.
    fn on_episode_begin(&mut self, _instance: &Instance) {}

    /// Called when a decision epoch opens, immediately before the epoch's
    /// single `dispatch_batch` call. Horizon-dropped epochs (no dispatch)
    /// do not produce this event.
    fn on_epoch(&mut self, _epoch: &EpochInfo) {}

    /// Called after each decision is validated and committed.
    fn on_decision(&mut self, _record: &DecisionRecord<'_>) {}

    /// Called once with the finished episode result.
    fn on_episode_end(&mut self, _result: &EpisodeResult) {}
}

/// An observer that counts events — useful to assert the epoch/decision
/// protocol in tests and as a minimal example implementation.
#[derive(Debug, Default, Clone)]
pub struct EventCounter {
    /// `on_episode_begin` calls seen.
    pub episodes_begun: usize,
    /// `on_epoch` calls seen.
    pub epochs: usize,
    /// `on_decision` calls seen.
    pub decisions: usize,
    /// Decisions that assigned a vehicle.
    pub assigned: usize,
    /// `on_episode_end` calls seen.
    pub episodes_ended: usize,
}

impl SimObserver for EventCounter {
    fn on_episode_begin(&mut self, _instance: &Instance) {
        self.episodes_begun += 1;
    }

    fn on_epoch(&mut self, _epoch: &EpochInfo) {
        self.epochs += 1;
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        self.decisions += 1;
        if record.decision.is_assigned() {
            self.assigned += 1;
        }
    }

    fn on_episode_end(&mut self, _result: &EpisodeResult) {
        self.episodes_ended += 1;
    }
}
