//! Protocol tests for the observer/epoch seam: one `dispatch_batch` call
//! per decision epoch, and the guaranteed observer call order
//! (`on_episode_begin`, then `on_epoch` followed by that epoch's
//! `on_decision`s, then `on_episode_end`).

use dpdp_net::{
    FleetConfig, Instance, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork,
    TimeDelta, TimePoint, VehicleId,
};
use dpdp_sim::{
    BufferingMode, Decision, DecisionBatch, DecisionRecord, DispatchContext, Dispatcher,
    EpisodeResult, EpochInfo, FirstFeasible, SimObserver, Simulator,
};

fn instance(orders: Vec<Order>) -> Instance {
    let nodes = vec![
        Node::depot(NodeId(0), Point::new(0.0, 0.0)),
        Node::factory(NodeId(1), Point::new(10.0, 0.0)),
        Node::factory(NodeId(2), Point::new(20.0, 0.0)),
    ];
    let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
    let fleet =
        FleetConfig::homogeneous(4, &[NodeId(0)], 50.0, 500.0, 2.0, 60.0, TimeDelta::ZERO).unwrap();
    Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
}

fn order(id: u32, created_h: f64) -> Order {
    Order::new(
        OrderId(id),
        NodeId(1),
        NodeId(2),
        2.0,
        TimePoint::from_hours(created_h),
        TimePoint::from_hours(created_h + 10.0),
    )
    .unwrap()
}

/// Counts `dispatch_batch` invocations while delegating to the inner
/// policy.
struct CountBatches<D> {
    inner: D,
    batch_calls: usize,
    batch_sizes: Vec<usize>,
}

impl<D> CountBatches<D> {
    fn new(inner: D) -> Self {
        CountBatches {
            inner,
            batch_calls: 0,
            batch_sizes: Vec::new(),
        }
    }
}

impl<D: Dispatcher> Dispatcher for CountBatches<D> {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        self.inner.dispatch(ctx)
    }

    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        self.batch_calls += 1;
        self.batch_sizes.push(batch.len());
        self.inner.dispatch_batch(batch)
    }

    fn begin_episode(&mut self, instance: &Instance) {
        self.inner.begin_episode(instance);
    }

    fn end_episode(&mut self) {
        self.inner.end_episode();
    }
}

#[derive(Debug, PartialEq)]
enum Event {
    Begin,
    Epoch { index: usize, num_orders: usize },
    Decision(OrderId),
    End,
}

#[derive(Default)]
struct EventLog {
    events: Vec<Event>,
}

impl SimObserver for EventLog {
    fn on_episode_begin(&mut self, _instance: &Instance) {
        self.events.push(Event::Begin);
    }

    fn on_epoch(&mut self, epoch: &EpochInfo) {
        self.events.push(Event::Epoch {
            index: epoch.index,
            num_orders: epoch.num_orders,
        });
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        self.events.push(Event::Decision(record.assignment.order));
    }

    fn on_episode_end(&mut self, _result: &EpisodeResult) {
        self.events.push(Event::End);
    }
}

#[test]
fn fixed_interval_issues_one_dispatch_batch_per_flush_epoch() {
    // Orders at 8:05, 8:10 (flush 8:30), 8:40 (flush 9:00), 9:00 (flush
    // 9:00 — created exactly on the boundary): two flush epochs in total.
    let inst = instance(vec![
        order(0, 8.0 + 5.0 / 60.0),
        order(1, 8.0 + 10.0 / 60.0),
        order(2, 8.0 + 40.0 / 60.0),
        order(3, 9.0),
    ]);
    let sim = Simulator::builder(&inst)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)))
        .build()
        .unwrap();
    let mut counter = CountBatches::new(FirstFeasible);
    let mut log = EventLog::default();
    let result = sim.run_observed(&mut counter, &mut [&mut log]);

    assert_eq!(result.metrics.served, 4);
    assert_eq!(counter.batch_calls, 2, "one dispatch_batch per flush epoch");
    assert_eq!(counter.batch_sizes, vec![2, 2]);
    let epochs: Vec<&Event> = log
        .events
        .iter()
        .filter(|e| matches!(e, Event::Epoch { .. }))
        .collect();
    assert_eq!(epochs.len(), counter.batch_calls);
}

#[test]
fn observer_sees_every_decision_between_epoch_and_end() {
    let inst = instance(vec![
        order(0, 8.0),
        order(1, 8.0),
        order(2, 8.5),
        order(3, 10.0),
    ]);
    let sim = Simulator::builder(&inst).build().unwrap();
    let mut log = EventLog::default();
    sim.run_observed(&mut FirstFeasible, &mut [&mut log]);

    // Exactly one Begin first and one End last.
    assert_eq!(log.events.first(), Some(&Event::Begin));
    assert_eq!(log.events.last(), Some(&Event::End));
    assert_eq!(
        log.events
            .iter()
            .filter(|e| matches!(e, Event::Begin))
            .count(),
        1
    );
    assert_eq!(
        log.events
            .iter()
            .filter(|e| matches!(e, Event::End))
            .count(),
        1
    );

    // Every decision happens after some epoch announcement and before the
    // end, and each epoch announces exactly the number of decisions that
    // follow it.
    let mut seen_epoch = false;
    let mut remaining_in_epoch = 0usize;
    let mut decisions = 0usize;
    for event in &log.events {
        match event {
            Event::Begin => {}
            Event::Epoch { num_orders, .. } => {
                assert_eq!(
                    remaining_in_epoch, 0,
                    "epoch opened before the previous one finished"
                );
                seen_epoch = true;
                remaining_in_epoch = *num_orders;
            }
            Event::Decision(_) => {
                assert!(seen_epoch, "decision before any epoch");
                assert!(remaining_in_epoch > 0, "more decisions than announced");
                remaining_in_epoch -= 1;
                decisions += 1;
            }
            Event::End => {
                assert_eq!(remaining_in_epoch, 0, "episode ended mid-epoch");
            }
        }
    }
    assert_eq!(decisions, inst.num_orders());

    // Epoch indices are sequential: 0, 1, 2 (orders 0 and 1 share one
    // epoch under immediate service because they share a creation time).
    let indices: Vec<usize> = log
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Epoch { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(indices, vec![0, 1, 2]);
}
