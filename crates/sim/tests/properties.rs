//! Property-based tests for the simulator: conservation laws and execution
//! coherence over random instances and dispatchers.

use dpdp_net::*;
use dpdp_sim::dispatcher::FirstFeasible;
use dpdp_sim::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    instance: Instance,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((0.0f64..40.0, 0.0f64..40.0), 4..8),
        proptest::collection::vec((0.5f64..6.0, 0.0f64..20.0, 2.0f64..10.0), 1..10),
        1usize..5,
    )
        .prop_map(|(pts, order_params, k)| {
            let nodes: Vec<Node> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    if i == 0 {
                        Node::depot(NodeId::from_index(i), Point::new(x, y))
                    } else {
                        Node::factory(NodeId::from_index(i), Point::new(x, y))
                    }
                })
                .collect();
            let nf = nodes.len() - 1;
            let net = RoadNetwork::euclidean(nodes, 1.2).unwrap();
            let fleet = FleetConfig::homogeneous(
                k,
                &[NodeId(0)],
                10.0,
                300.0,
                2.0,
                40.0,
                TimeDelta::from_minutes(2.0),
            )
            .unwrap();
            let orders: Vec<Order> = order_params
                .iter()
                .enumerate()
                .map(|(i, &(q, created_h, slack_h))| {
                    let p = 1 + (i % nf);
                    let mut d = 1 + ((i * 3 + 1) % nf);
                    if d == p {
                        d = 1 + (d % nf);
                        if d == p {
                            d = if p == 1 { 2 } else { 1 };
                        }
                    }
                    Order::new(
                        OrderId(i as u32),
                        NodeId::from_index(p),
                        NodeId::from_index(d),
                        q,
                        TimePoint::from_hours(created_h),
                        TimePoint::from_hours(created_h + slack_h),
                    )
                    .unwrap()
                })
                .collect();
            Scenario {
                instance: Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation & identity laws hold for any instance: every order is
    /// either served or rejected, TC matches its definition, NUV is
    /// bounded by fleet size and by distinct serving vehicles.
    #[test]
    fn episode_conservation_laws(s in arb_scenario()) {
        let result = Simulator::builder(&s.instance).build().unwrap().run(&mut FirstFeasible);
        let m = &result.metrics;
        prop_assert_eq!(m.served + m.rejected, s.instance.num_orders());
        prop_assert_eq!(result.assignments.len(), s.instance.num_orders());
        let expect = s.instance.fleet.total_cost(m.nuv, m.ttl);
        prop_assert!((m.total_cost - expect).abs() < 1e-6);
        let distinct: std::collections::BTreeSet<_> = result
            .assignments
            .iter()
            .filter_map(|a| a.vehicle)
            .collect();
        prop_assert_eq!(m.nuv, distinct.len());
        prop_assert!(m.nuv <= s.instance.num_vehicles());
        prop_assert!(m.ttl >= 0.0);
        prop_assert_eq!(m.avg_response_secs, 0.0);
    }

    /// Assignment records are monotone in time and consistent: every served
    /// order's new length is at least its previous length (metric), and
    /// `vehicle_was_used` is false exactly once per used vehicle.
    #[test]
    fn assignment_log_is_coherent(s in arb_scenario()) {
        let result = Simulator::builder(&s.instance).build().unwrap().run(&mut FirstFeasible);
        let mut prev_time = TimePoint::ZERO;
        let mut activations = std::collections::BTreeMap::new();
        for a in &result.assignments {
            prop_assert!(a.time >= prev_time);
            prev_time = a.time;
            if let Some(v) = a.vehicle {
                prop_assert!(a.new_length >= a.prev_length - 1e-9);
                if !a.vehicle_was_used {
                    *activations.entry(v).or_insert(0usize) += 1;
                }
            }
        }
        for (v, n) in activations {
            prop_assert_eq!(n, 1, "vehicle {} activated more than once", v);
        }
    }

    /// Buffering never *decreases* response time and never serves more
    /// orders than immediate dispatch rejects fewer of (deadlines only get
    /// tighter when decisions are delayed).
    #[test]
    fn buffering_only_delays(s in arb_scenario(), minutes in 1.0f64..120.0) {
        let immediate = Simulator::builder(&s.instance).build().unwrap().run(&mut FirstFeasible);
        let buffered = Simulator::builder(&s.instance)
            .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(minutes)))
            .build()
            .unwrap()
            .run(&mut FirstFeasible);
        prop_assert!(buffered.metrics.avg_response_secs >= 0.0);
        prop_assert!(
            buffered.metrics.avg_response_secs >= immediate.metrics.avg_response_secs
        );
        prop_assert!(buffered.metrics.served <= s.instance.num_orders());
    }

    /// Replaying the same instance with the same dispatcher is bit-stable.
    #[test]
    fn simulation_is_deterministic(s in arb_scenario()) {
        let a = Simulator::builder(&s.instance).build().unwrap().run(&mut FirstFeasible);
        let b = Simulator::builder(&s.instance).build().unwrap().run(&mut FirstFeasible);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.assignments, b.assignments);
    }
}
