//! Streaming simulation probes: [`SimObserver`]s that accumulate
//! experiment statistics directly from the episode event stream.
//!
//! These are the building blocks of the observer-based experiment
//! pipeline: instead of materializing a full `EpisodeResult` log and
//! scraping it afterwards, a probe rides along the simulation and owns its
//! aggregate when the episode ends — one pass, no intermediate vectors.
//! (The evaluation-row probe lives in [`crate::experiment::EvalProbe`];
//! `dpdp-rl`'s capacity recorder follows the same pattern.)

use crate::report::{curve_csv_line, CURVE_CSV_HEADER};
use dpdp_data::{FactoryIndex, StdMatrix};
use dpdp_net::Instance;
use dpdp_rl::{EpisodePoint, TrainObserver};
use dpdp_sim::{DecisionRecord, SimObserver};
use std::collections::VecDeque;

/// Streams the spatial-temporal demand distribution (the paper's STD
/// matrix: pickup factory × decision interval) from an episode's decision
/// stream.
///
/// Every order produces exactly one decision record — assigned or rejected
/// — carrying its decision-interval index, so the accumulated matrix adds
/// each order's quantity once (the STD matrix is quantity-weighted, like
/// [`StdMatrix::from_orders`]). Under immediate service the decision
/// interval equals the creation interval, making the result bit-identical
/// to `from_orders` over the instance's order table (asserted in this
/// module's tests); under buffering it shifts demand onto flush instants,
/// i.e. the demand the *dispatch layer* actually experiences.
///
/// `dpdp-sim`'s mid-episode re-partitioning (`RepartitionPolicy`) performs
/// the same quantity-weighted pickup accumulation engine-side to drive its
/// demand-fed shard re-seeding — this observer is the read-only probe of
/// that signal (the engine cannot depend on this crate, so the two
/// accumulators are deliberate mirrors).
#[derive(Debug, Clone)]
pub struct DemandRecorder {
    index: FactoryIndex,
    num_intervals: usize,
    /// Pickup node and quantity per order id, captured at episode begin.
    orders: Vec<(dpdp_net::NodeId, f64)>,
    matrix: StdMatrix,
}

impl DemandRecorder {
    /// A recorder over the given factory row mapping and interval count.
    pub fn new(index: FactoryIndex, num_intervals: usize) -> Self {
        let n = index.num_factories();
        DemandRecorder {
            index,
            num_intervals,
            orders: Vec::new(),
            matrix: StdMatrix::zeros(n, num_intervals),
        }
    }

    /// The accumulated demand matrix (reset at every episode begin).
    pub fn matrix(&self) -> &StdMatrix {
        &self.matrix
    }

    /// Consumes the recorder, returning the accumulated matrix.
    pub fn into_matrix(self) -> StdMatrix {
        self.matrix
    }
}

impl SimObserver for DemandRecorder {
    fn on_episode_begin(&mut self, instance: &Instance) {
        self.orders = instance
            .orders()
            .iter()
            .map(|o| (o.pickup, o.quantity))
            .collect();
        self.matrix = StdMatrix::zeros(self.index.num_factories(), self.num_intervals);
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        let order = record.decision.order;
        let Some(&(pickup, quantity)) = self.orders.get(order.index()) else {
            return;
        };
        let Some(row) = self.index.row(pickup) else {
            return;
        };
        let col = record.assignment.interval.min(self.num_intervals - 1);
        *self.matrix.get_mut(row, col) += quantity;
    }
}

/// Streams a training convergence curve into its CSV rendering and
/// running summary statistics — the [`TrainObserver`] analogue of
/// [`crate::experiment::EvalProbe`]. Consumers (e.g. the `fig8`/`fig9`
/// regenerators) keep nothing but this probe: no `TrainReport` is ever
/// materialized.
///
/// Tail statistics cover the last `tail_cap` episodes (the "converged"
/// window of the paper's Fig. 8 summaries).
#[derive(Debug, Clone)]
pub struct CurveProbe {
    csv: String,
    tail: VecDeque<(usize, f64)>,
    tail_cap: usize,
    /// Episodes streamed so far.
    pub episodes: usize,
    /// Best (lowest) total cost seen.
    pub best_cost: Option<f64>,
    /// The most recent curve point.
    pub last: Option<EpisodePoint>,
}

impl CurveProbe {
    /// A probe whose tail statistics cover the last `tail_cap` episodes.
    pub fn new(tail_cap: usize) -> Self {
        CurveProbe {
            csv: String::from(CURVE_CSV_HEADER),
            tail: VecDeque::with_capacity(tail_cap.max(1)),
            tail_cap: tail_cap.max(1),
            episodes: 0,
            best_cost: None,
            last: None,
        }
    }

    /// The accumulated curve CSV (header plus one line per episode).
    pub fn csv(&self) -> &str {
        &self.csv
    }

    /// Mean NUV over the tail window, if any episode streamed.
    pub fn tail_mean_nuv(&self) -> Option<f64> {
        if self.tail.is_empty() {
            return None;
        }
        Some(self.tail.iter().map(|&(n, _)| n as f64).sum::<f64>() / self.tail.len() as f64)
    }

    /// Mean total cost over the tail window, if any episode streamed.
    pub fn tail_mean_cost(&self) -> Option<f64> {
        if self.tail.is_empty() {
            return None;
        }
        Some(self.tail.iter().map(|&(_, c)| c).sum::<f64>() / self.tail.len() as f64)
    }
}

impl TrainObserver for CurveProbe {
    fn on_episode(&mut self, point: &EpisodePoint) {
        self.csv.push_str(&curve_csv_line(point));
        if self.tail.len() == self.tail_cap {
            self.tail.pop_front();
        }
        self.tail.push_back((point.nuv, point.total_cost));
        self.episodes += 1;
        self.best_cost = Some(match self.best_cost {
            Some(best) => best.min(point.total_cost),
            None => point.total_cost,
        });
        self.last = Some(point.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Presets;
    use dpdp_sim::{FirstFeasible, MetricsOptions, Simulator};

    #[test]
    fn streamed_demand_matches_from_orders_under_immediate_service() {
        let p = Presets::quick();
        let ds = p.dataset();
        let inst = ds.day_instance(2, 8);
        let mut recorder = DemandRecorder::new(ds.factory_index(), ds.grid().num_intervals());
        Simulator::builder(&inst)
            .metrics(MetricsOptions {
                record_assignments: false,
                record_vehicle_stats: false,
            })
            .build()
            .unwrap()
            .run_observed(&mut FirstFeasible, &mut [&mut recorder]);
        let direct = StdMatrix::from_orders(inst.orders(), &ds.grid(), &ds.factory_index());
        assert_eq!(recorder.matrix().data(), direct.data());
        assert!(recorder.matrix().total() > 0.0);
    }

    #[test]
    fn curve_probe_streams_csv_and_tail_stats() {
        let mut probe = CurveProbe::new(2);
        for e in 0..4usize {
            probe.on_episode(&EpisodePoint {
                episode: e,
                nuv: e + 1,
                total_cost: 100.0 * (4 - e) as f64,
                ttl: 10.0,
                served: 5,
                rejected: 0,
                capacity_diff: None,
            });
        }
        assert_eq!(probe.episodes, 4);
        assert_eq!(probe.csv().lines().count(), 5, "header + 4 points");
        // Tail window = last two episodes: NUV {3, 4}, TC {200, 100}.
        assert!((probe.tail_mean_nuv().unwrap() - 3.5).abs() < 1e-12);
        assert!((probe.tail_mean_cost().unwrap() - 150.0).abs() < 1e-12);
        assert_eq!(probe.best_cost, Some(100.0));
        assert_eq!(probe.last.as_ref().unwrap().episode, 3);
        // Matches the batch renderer line for line.
        assert!(probe.csv().starts_with(crate::report::CURVE_CSV_HEADER));
    }
}
