//! Streaming simulation probes: [`SimObserver`]s that accumulate
//! experiment statistics directly from the episode event stream.
//!
//! These are the building blocks of the observer-based experiment
//! pipeline: instead of materializing a full `EpisodeResult` log and
//! scraping it afterwards, a probe rides along the simulation and owns its
//! aggregate when the episode ends — one pass, no intermediate vectors.
//! (The evaluation-row probe lives in [`crate::experiment::EvalProbe`];
//! `dpdp-rl`'s capacity recorder follows the same pattern.)

use dpdp_data::{FactoryIndex, StdMatrix};
use dpdp_net::Instance;
use dpdp_sim::{DecisionRecord, SimObserver};

/// Streams the spatial-temporal demand distribution (the paper's STD
/// matrix: pickup factory × decision interval) from an episode's decision
/// stream.
///
/// Every order produces exactly one decision record — assigned or rejected
/// — carrying its decision-interval index, so the accumulated matrix adds
/// each order's quantity once (the STD matrix is quantity-weighted, like
/// [`StdMatrix::from_orders`]). Under immediate service the decision
/// interval equals the creation interval, making the result bit-identical
/// to `from_orders` over the instance's order table (asserted in this
/// module's tests); under buffering it shifts demand onto flush instants,
/// i.e. the demand the *dispatch layer* actually experiences.
#[derive(Debug, Clone)]
pub struct DemandRecorder {
    index: FactoryIndex,
    num_intervals: usize,
    /// Pickup node and quantity per order id, captured at episode begin.
    orders: Vec<(dpdp_net::NodeId, f64)>,
    matrix: StdMatrix,
}

impl DemandRecorder {
    /// A recorder over the given factory row mapping and interval count.
    pub fn new(index: FactoryIndex, num_intervals: usize) -> Self {
        let n = index.num_factories();
        DemandRecorder {
            index,
            num_intervals,
            orders: Vec::new(),
            matrix: StdMatrix::zeros(n, num_intervals),
        }
    }

    /// The accumulated demand matrix (reset at every episode begin).
    pub fn matrix(&self) -> &StdMatrix {
        &self.matrix
    }

    /// Consumes the recorder, returning the accumulated matrix.
    pub fn into_matrix(self) -> StdMatrix {
        self.matrix
    }
}

impl SimObserver for DemandRecorder {
    fn on_episode_begin(&mut self, instance: &Instance) {
        self.orders = instance
            .orders()
            .iter()
            .map(|o| (o.pickup, o.quantity))
            .collect();
        self.matrix = StdMatrix::zeros(self.index.num_factories(), self.num_intervals);
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        let order = record.decision.order;
        let Some(&(pickup, quantity)) = self.orders.get(order.index()) else {
            return;
        };
        let Some(row) = self.index.row(pickup) else {
            return;
        };
        let col = record.assignment.interval.min(self.num_intervals - 1);
        *self.matrix.get_mut(row, col) += quantity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Presets;
    use dpdp_sim::{FirstFeasible, MetricsOptions, Simulator};

    #[test]
    fn streamed_demand_matches_from_orders_under_immediate_service() {
        let p = Presets::quick();
        let ds = p.dataset();
        let inst = ds.day_instance(2, 8);
        let mut recorder = DemandRecorder::new(ds.factory_index(), ds.grid().num_intervals());
        Simulator::builder(&inst)
            .metrics(MetricsOptions {
                record_assignments: false,
                record_vehicle_stats: false,
            })
            .build()
            .unwrap()
            .run_observed(&mut FirstFeasible, &mut [&mut recorder]);
        let direct = StdMatrix::from_orders(inst.orders(), &ds.grid(), &ds.factory_index());
        assert_eq!(recorder.matrix().data(), direct.data());
        assert!(recorder.matrix().total() > 0.0);
    }
}
