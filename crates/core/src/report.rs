//! Plain-text and CSV rendering of experiment output.

use crate::experiment::EvalRow;
use dpdp_rl::EpisodePoint;

/// Renders evaluation rows as an aligned text table.
pub fn render_table(title: &str, rows: &[EvalRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>9} {:>10}\n",
        "algo", "NUV", "TC", "TTL(km)", "served", "rejected", "wall(s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>12.1} {:>12.1} {:>8} {:>9} {:>10.3}\n",
            r.algo, r.nuv, r.total_cost, r.ttl, r.served, r.rejected, r.wall_secs
        ));
    }
    out
}

/// Renders evaluation rows as CSV with a header (the `rej_*` columns are
/// the per-reason rejection breakdown streamed by the evaluation probe,
/// including the disruption outcomes `rej_cancelled` / `rej_vehicle_lost`).
pub fn rows_to_csv(rows: &[EvalRow]) -> String {
    let mut out = String::from(
        "algo,nuv,total_cost,ttl_km,served,rejected,\
         rej_no_feasible,rej_policy,rej_infeasible_choice,rej_horizon,\
         rej_cancelled,rej_vehicle_lost,wall_secs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{},{},{},{},{},{},{},{},{:.6}\n",
            r.algo,
            r.nuv,
            r.total_cost,
            r.ttl,
            r.served,
            r.rejected,
            r.rejections.no_feasible_vehicle,
            r.rejections.policy_rejected,
            r.rejections.infeasible_choice,
            r.rejections.horizon_exceeded,
            r.rejections.cancelled,
            r.rejections.vehicle_lost,
            r.wall_secs
        ));
    }
    out
}

/// Header of the convergence-curve CSV written by [`curve_to_csv`] and
/// streamed line by line by [`crate::probes::CurveProbe`].
pub const CURVE_CSV_HEADER: &str = "episode,nuv,total_cost,ttl_km,served,rejected,capacity_diff\n";

/// One convergence-curve CSV line (newline-terminated), matching
/// [`CURVE_CSV_HEADER`].
pub fn curve_csv_line(p: &EpisodePoint) -> String {
    format!(
        "{},{},{:.3},{:.3},{},{},{}\n",
        p.episode,
        p.nuv,
        p.total_cost,
        p.ttl,
        p.served,
        p.rejected,
        p.capacity_diff.map_or(String::new(), |d| format!("{d:.3}")),
    )
}

/// Renders a training convergence curve as CSV
/// (`episode,nuv,total_cost,ttl,served,rejected,capacity_diff`).
pub fn curve_to_csv(points: &[EpisodePoint]) -> String {
    let mut out = String::from(CURVE_CSV_HEADER);
    for p in points {
        out.push_str(&curve_csv_line(p));
    }
    out
}

/// Downsamples a curve to every `stride`-th point (always keeping the last),
/// for compact console output.
pub fn thin_curve(points: &[EpisodePoint], stride: usize) -> Vec<&EpisodePoint> {
    let stride = stride.max(1);
    let mut out: Vec<&EpisodePoint> = points.iter().step_by(stride).collect();
    if let Some(last) = points.last() {
        if out.last().map(|p| p.episode) != Some(last.episode) {
            out.push(last);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> EvalRow {
        EvalRow {
            algo: "ST-DDGN".into(),
            nuv: 26,
            total_cost: 11080.5,
            ttl: 1540.25,
            served: 150,
            rejected: 0,
            rejections: dpdp_sim::RejectionCounts::default(),
            wall_secs: 0.42,
            epochs: 150,
        }
    }

    fn point(e: usize) -> EpisodePoint {
        EpisodePoint {
            episode: e,
            nuv: 30,
            total_cost: 12000.0,
            ttl: 1500.0,
            served: 150,
            rejected: 0,
            capacity_diff: Some(250.0),
        }
    }

    #[test]
    fn table_contains_all_fields() {
        let s = render_table("Fig. 6", &[row()]);
        assert!(s.contains("Fig. 6"));
        assert!(s.contains("ST-DDGN"));
        assert!(s.contains("11080.5"));
        assert!(s.contains("150"));
    }

    #[test]
    fn csv_roundtrips_shape() {
        let s = rows_to_csv(&[row(), row()]);
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("algo,"));
        let c = curve_to_csv(&[point(0), point(1)]);
        assert_eq!(c.lines().count(), 3);
        assert!(c.contains("250.000"));
    }

    #[test]
    fn thin_curve_keeps_last() {
        let pts: Vec<EpisodePoint> = (0..10).map(point).collect();
        let thin = thin_curve(&pts, 4);
        let eps: Vec<usize> = thin.iter().map(|p| p.episode).collect();
        assert_eq!(eps, vec![0, 4, 8, 9]);
        assert!(thin_curve(&[], 3).is_empty());
    }
}
