//! High-level API for the ST-DDGN DPDP reproduction.
//!
//! This crate ties the substrates together into the paper's experimental
//! pipeline:
//!
//! * [`presets`] — the three instance scales of Section V (tiny instances
//!   for the optimality study, large-scale 50-vehicle/150-order instances,
//!   industry-scale full days);
//! * [`models`] — one-call construction of every dispatcher the paper
//!   evaluates (Baselines 1–3, DQN, AC, DGN, DDQN, DDGN, ST-DDQN, ST-DDGN);
//! * [`experiment`] — timed evaluation of dispatchers on instances and
//!   comparison tables;
//! * [`report`] — plain-text / CSV rendering used by the table and figure
//!   regenerators in `dpdp-bench`.
//!
//! # Quickstart
//!
//! ```no_run
//! use dpdp_core::presets::Presets;
//! use dpdp_core::models;
//! use dpdp_core::experiment::evaluate;
//!
//! let presets = Presets::quick();
//! let instance = presets.large_instance(0);
//! let mut b1 = models::baseline1();
//! let row = evaluate(&mut *b1, &instance);
//! println!("NUV = {}, TC = {:.1}", row.nuv, row.total_cost);
//! ```
//!
//! For full control, configure the simulator through its builder and watch
//! episodes through observers. Dispatch runs in *batched decision epochs*:
//! all orders sharing a decision time are decided by one
//! `Dispatcher::dispatch_batch` call against a shared fleet snapshot
//! (per-order policies are adapted automatically):
//!
//! ```no_run
//! use dpdp_core::prelude::*;
//! use dpdp_net::TimeDelta;
//!
//! let presets = Presets::quick();
//! let instance = presets.large_instance(0);
//! let sim = Simulator::builder(&instance)
//!     .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
//!     .seed(7)
//!     .build()
//!     .expect("positive buffering period");
//! let mut counter = EventCounter::default(); // a SimObserver
//! let mut b1 = models::baseline1();
//! let result = sim.run_observed(&mut *b1, &mut [&mut counter]);
//! println!(
//!     "{} epochs, {} decisions, TC {:.1}",
//!     counter.epochs, counter.decisions, result.metrics.total_cost,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod models;
pub mod presets;
pub mod probes;
pub mod report;

pub use experiment::{
    evaluate, evaluate_many, evaluate_many_threads, evaluate_pooled, evaluate_threads, EvalProbe,
    EvalRow,
};
pub use models::ModelSpec;
pub use presets::Presets;
pub use probes::{CurveProbe, DemandRecorder};

/// Commonly used re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::experiment::{
        evaluate, evaluate_many, evaluate_many_threads, evaluate_pooled, evaluate_threads,
        EvalProbe, EvalRow,
    };
    pub use crate::models::{self, ModelSpec};
    pub use crate::presets::Presets;
    pub use crate::probes::{CurveProbe, DemandRecorder};
    pub use crate::report;
    pub use dpdp_baselines::{Baseline1, Baseline2, Baseline3, ExactSolver};
    pub use dpdp_data::{Dataset, DatasetConfig, StScorer, StdMatrix};
    pub use dpdp_net::Instance;
    pub use dpdp_rl::{
        train, train_observed, ActorCriticAgent, AgentConfig, DqnAgent, ModelKind, TrainObserver,
        TrainerConfig,
    };
    pub use dpdp_sim::{
        BufferingMode, Decision, DecisionBatch, DecisionReason, Dispatcher, DisruptionConfig,
        DisruptionKind, DisruptionRecord, EpisodeMetrics, EpisodeResult, EventCounter,
        MetricsOptions, RepartitionPolicy, ShardConfig, SimObserver, Simulator, SimulatorBuilder,
        StreamCommand,
    };
}
