//! One-call construction of every dispatcher the paper evaluates.

use dpdp_baselines::{Baseline1, Baseline2, Baseline3};
use dpdp_data::{Dataset, StScorer};
use dpdp_rl::{ActorCriticAgent, ActorCriticConfig, AgentConfig, DqnAgent, ModelKind};
use dpdp_sim::Dispatcher;

/// Everything the comparison experiments iterate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// Greedy Baseline 1 (min incremental length; the UAT heuristic).
    Baseline1,
    /// Greedy Baseline 2 (min total length).
    Baseline2,
    /// Greedy Baseline 3 (max accepted orders).
    Baseline3,
    /// Actor-Critic.
    ActorCritic,
    /// A DQN-family model.
    Dqn(ModelKind),
}

impl ModelSpec {
    /// The paper's Fig. 6 / Fig. 7 line-up.
    pub fn comparison_lineup() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Dqn(ModelKind::Dqn),
            ModelSpec::ActorCritic,
            ModelSpec::Dqn(ModelKind::Dgn),
            ModelSpec::Dqn(ModelKind::StDdgn),
            ModelSpec::Baseline1,
            ModelSpec::Baseline2,
            ModelSpec::Baseline3,
        ]
    }

    /// The paper's Fig. 8 ablation line-up (Table II).
    pub fn ablation_lineup() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Dqn(ModelKind::Ddqn),
            ModelSpec::Dqn(ModelKind::StDdqn),
            ModelSpec::Dqn(ModelKind::Ddgn),
            ModelSpec::Dqn(ModelKind::StDdgn),
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelSpec::Baseline1 => "Baseline1",
            ModelSpec::Baseline2 => "Baseline2",
            ModelSpec::Baseline3 => "Baseline3",
            ModelSpec::ActorCritic => "AC",
            ModelSpec::Dqn(kind) => kind.name(),
        }
    }

    /// Whether this model needs training before evaluation.
    pub fn is_learned(self) -> bool {
        !matches!(
            self,
            ModelSpec::Baseline1 | ModelSpec::Baseline2 | ModelSpec::Baseline3
        )
    }
}

/// Baseline 1 as a boxed dispatcher.
pub fn baseline1() -> Box<dyn Dispatcher> {
    Box::new(Baseline1)
}

/// Baseline 2 as a boxed dispatcher.
pub fn baseline2() -> Box<dyn Dispatcher> {
    Box::new(Baseline2)
}

/// Baseline 3 as a boxed dispatcher.
pub fn baseline3() -> Box<dyn Dispatcher> {
    Box::new(Baseline3::default())
}

/// Builds a DQN-family agent wired to the dataset's campus (the ST variants
/// get a scorer over the dataset's grid and factory index). The caller still
/// has to provide the per-episode STD prediction via
/// [`DqnAgent::set_prediction`].
pub fn dqn_agent(kind: ModelKind, dataset: &Dataset, seed: u64) -> DqnAgent {
    let mut config = AgentConfig::new(kind);
    config.seed = seed;
    let scorer = kind
        .uses_st()
        .then(|| StScorer::new(dataset.grid(), dataset.factory_index()));
    DqnAgent::new(config, dataset.grid().num_intervals(), scorer)
}

/// Builds a DQN-family agent with explicit hyper-parameters.
pub fn dqn_agent_with_config(config: AgentConfig, dataset: &Dataset) -> DqnAgent {
    let scorer = config
        .kind
        .uses_st()
        .then(|| StScorer::new(dataset.grid(), dataset.factory_index()));
    DqnAgent::new(config, dataset.grid().num_intervals(), scorer)
}

/// Builds the Actor-Critic baseline.
pub fn actor_critic(dataset: &Dataset, seed: u64) -> ActorCriticAgent {
    let config = ActorCriticConfig {
        seed,
        ..ActorCriticConfig::default()
    };
    ActorCriticAgent::new(config, dataset.grid().num_intervals())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Presets;

    #[test]
    fn lineups_match_paper() {
        let names: Vec<&str> = ModelSpec::comparison_lineup()
            .into_iter()
            .map(ModelSpec::name)
            .collect();
        assert_eq!(
            names,
            vec![
                "DQN",
                "AC",
                "DGN",
                "ST-DDGN",
                "Baseline1",
                "Baseline2",
                "Baseline3"
            ]
        );
        let ablation: Vec<&str> = ModelSpec::ablation_lineup()
            .into_iter()
            .map(ModelSpec::name)
            .collect();
        assert_eq!(ablation, vec!["DDQN", "ST-DDQN", "DDGN", "ST-DDGN"]);
    }

    #[test]
    fn learned_flag() {
        assert!(!ModelSpec::Baseline1.is_learned());
        assert!(ModelSpec::ActorCritic.is_learned());
        assert!(ModelSpec::Dqn(ModelKind::Dqn).is_learned());
    }

    #[test]
    fn st_models_get_scorers_and_plain_models_do_not() {
        let p = Presets::quick();
        // Construction would panic if scorer wiring were wrong.
        let _ = dqn_agent(ModelKind::StDdgn, p.dataset(), 0);
        let _ = dqn_agent(ModelKind::Dqn, p.dataset(), 0);
        let _ = actor_critic(p.dataset(), 0);
    }
}
