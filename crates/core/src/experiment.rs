//! Timed evaluation of dispatchers on instances.
//!
//! Evaluation is **observer-based**: one [`EvalProbe`] streams every count
//! an [`EvalRow`] needs straight from the episode's epoch/decision events,
//! and the simulator runs with the per-order and per-vehicle logs switched
//! off — one pass, no post-hoc scraping of materialized `EpisodeResult`
//! vectors (only the end-of-episode aggregates, which the simulator always
//! computes, are read at the end).

use dpdp_net::Instance;
use dpdp_pool::ThreadPool;
use dpdp_sim::{
    CancelOutcome, DecisionRecord, Dispatcher, DisruptionKind, DisruptionRecord, EpochInfo,
    MetricsOptions, RejectionCounts, SimObserver, Simulator,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One row of a comparison table: a dispatcher's metrics on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRow {
    /// Dispatcher name.
    pub algo: String,
    /// Number of used vehicles.
    pub nuv: usize,
    /// Total cost.
    pub total_cost: f64,
    /// Total travel length, km.
    pub ttl: f64,
    /// Orders served.
    pub served: usize,
    /// Orders rejected.
    pub rejected: usize,
    /// Rejections broken down by decision reason (streamed by the
    /// evaluation probe; `rejections.total() == rejected`).
    pub rejections: RejectionCounts,
    /// Wall-clock seconds for the whole episode (all dispatch decisions
    /// plus simulation bookkeeping) — the analogue of Table I's wall time.
    pub wall_secs: f64,
    /// Decision epochs the episode went through (batched dispatch calls).
    pub epochs: usize,
}

/// Streaming evaluation observer: accumulates epoch and decision counts —
/// including the per-reason rejection breakdown — from the episode's event
/// stream, so evaluation needs no materialized assignment log.
///
/// Disruption events are mirrored exactly the way the simulator's own
/// accumulator applies them (see `SimObserver::on_disruption`): a
/// post-assignment cancellation or a lost order moves one count from
/// served to the matching rejection reason, a stranded order is un-counted
/// until its re-dispatch decision streams back through `on_decision` —
/// so the probe's totals equal the episode aggregates even on disrupted
/// scenarios.
#[derive(Debug, Default, Clone)]
pub struct EvalProbe {
    /// Decision epochs (batched dispatch calls) seen.
    pub epochs: usize,
    /// Orders assigned.
    pub served: usize,
    /// Orders rejected.
    pub rejected: usize,
    /// Rejections by reason.
    pub rejections: RejectionCounts,
    /// Cancellation events applied (any outcome).
    pub cancellations: usize,
    /// Vehicle breakdowns applied.
    pub breakdowns: usize,
}

impl SimObserver for EvalProbe {
    fn on_epoch(&mut self, _epoch: &EpochInfo) {
        self.epochs += 1;
    }

    fn on_decision(&mut self, record: &DecisionRecord<'_>) {
        if record.decision.is_assigned() {
            self.served += 1;
        } else {
            self.rejected += 1;
            self.rejections.record(record.decision.reason);
        }
    }

    fn on_disruption(&mut self, record: &DisruptionRecord) {
        match &record.kind {
            DisruptionKind::OrderCancelled { outcome, .. } => {
                self.cancellations += 1;
                if *outcome == CancelOutcome::AfterAssignment {
                    self.served -= 1;
                    self.rejected += 1;
                    self.rejections.cancelled += 1;
                }
                // BeforeDispatch flows through on_decision; TooLate is a
                // no-op.
            }
            DisruptionKind::VehicleBreakdown { stranded, lost, .. } => {
                self.breakdowns += 1;
                self.served -= stranded.len() + lost.len();
                self.rejected += lost.len();
                self.rejections.vehicle_lost += lost.len();
            }
            DisruptionKind::VehicleRecovered { .. } => {}
        }
    }
}

/// Runs one episode single-threaded and times it.
pub fn evaluate(dispatcher: &mut dyn Dispatcher, instance: &Instance) -> EvalRow {
    evaluate_threads(dispatcher, instance, 1)
}

/// Runs one episode on a scoring pool of `num_threads` threads and times
/// it. Metrics are identical for every thread count (see
/// [`dpdp_sim::SimulatorBuilder::num_threads`]); only `wall_secs` moves.
pub fn evaluate_threads(
    dispatcher: &mut dyn Dispatcher,
    instance: &Instance,
    num_threads: usize,
) -> EvalRow {
    evaluate_pooled(
        dispatcher,
        instance,
        &Arc::new(ThreadPool::new(num_threads)),
    )
}

/// Runs one episode on a caller-owned pool (reused across episodes so the
/// workers outlive each one) and times it. Counts stream through an
/// [`EvalProbe`] and the per-order/per-vehicle logs are never materialized.
pub fn evaluate_pooled(
    dispatcher: &mut dyn Dispatcher,
    instance: &Instance,
    pool: &Arc<ThreadPool>,
) -> EvalRow {
    let mut probe = EvalProbe::default();
    let start = Instant::now();
    let result = Simulator::builder(instance)
        .thread_pool(Arc::clone(pool))
        .metrics(MetricsOptions {
            record_assignments: false,
            record_vehicle_stats: false,
        })
        .build()
        .unwrap()
        .run_observed(dispatcher, &mut [&mut probe]);
    let wall_secs = start.elapsed().as_secs_f64();
    let m = result.metrics;
    debug_assert_eq!(m.served, probe.served, "probe diverged from aggregates");
    debug_assert_eq!(m.rejections, probe.rejections);
    EvalRow {
        algo: dispatcher.name().to_string(),
        nuv: m.nuv,
        total_cost: m.total_cost,
        ttl: m.ttl,
        served: probe.served,
        rejected: probe.rejected,
        rejections: probe.rejections,
        wall_secs,
        epochs: probe.epochs,
    }
}

/// Evaluates a dispatcher across several instances single-threaded,
/// returning one row per instance (in order).
pub fn evaluate_many(dispatcher: &mut dyn Dispatcher, instances: &[Instance]) -> Vec<EvalRow> {
    evaluate_many_threads(dispatcher, instances, 1)
}

/// Evaluates a dispatcher across several instances, each episode scored on
/// a pool of `num_threads` threads, returning one row per instance (in
/// order).
pub fn evaluate_many_threads(
    dispatcher: &mut dyn Dispatcher,
    instances: &[Instance],
    num_threads: usize,
) -> Vec<EvalRow> {
    // One pool for the whole sweep: episodes share the workers instead of
    // paying thread spawn/teardown per instance.
    let pool = Arc::new(ThreadPool::new(num_threads));
    instances
        .iter()
        .map(|inst| evaluate_pooled(dispatcher, inst, &pool))
        .collect()
}

/// Averages rows (same algorithm, many instances) into a summary row; wall
/// time and epoch counts are summed (totals), the other metrics are means.
/// The rejection breakdown is averaged per reason (floor division) and the
/// summary's `rejected` is its total, so `rejections.total() == rejected`
/// holds on the mean row just as on per-instance rows.
pub fn mean_row(rows: &[EvalRow]) -> Option<EvalRow> {
    if rows.is_empty() {
        return None;
    }
    let n = rows.len() as f64;
    let mean_count = |field: fn(&RejectionCounts) -> usize| {
        rows.iter().map(|r| field(&r.rejections)).sum::<usize>() / rows.len()
    };
    let rejections = RejectionCounts {
        no_feasible_vehicle: mean_count(|r| r.no_feasible_vehicle),
        policy_rejected: mean_count(|r| r.policy_rejected),
        infeasible_choice: mean_count(|r| r.infeasible_choice),
        horizon_exceeded: mean_count(|r| r.horizon_exceeded),
        cancelled: mean_count(|r| r.cancelled),
        vehicle_lost: mean_count(|r| r.vehicle_lost),
    };
    Some(EvalRow {
        algo: rows[0].algo.clone(),
        nuv: (rows.iter().map(|r| r.nuv).sum::<usize>() as f64 / n).round() as usize,
        total_cost: rows.iter().map(|r| r.total_cost).sum::<f64>() / n,
        ttl: rows.iter().map(|r| r.ttl).sum::<f64>() / n,
        served: rows.iter().map(|r| r.served).sum::<usize>() / rows.len(),
        rejected: rejections.total(),
        rejections,
        wall_secs: rows.iter().map(|r| r.wall_secs).sum::<f64>(),
        epochs: rows.iter().map(|r| r.epochs).sum::<usize>(),
    })
}

/// Mean and standard deviation of a metric across repeated runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

fn mean_std(values: &[f64]) -> MeanStd {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregate of the paper's repeated-training protocol ("the policy
/// learning of DRL methods are conducted five times on each testing
/// instance"): per-metric mean ± std across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeededEval {
    /// Dispatcher name.
    pub algo: String,
    /// NUV across seeds.
    pub nuv: MeanStd,
    /// Total cost across seeds.
    pub total_cost: MeanStd,
    /// Number of runs.
    pub runs: usize,
}

/// Trains a freshly-seeded model per seed via `make`, evaluates each on
/// `instance`, and aggregates — the paper's five-repetition protocol.
pub fn evaluate_seeds(
    make: impl Fn(u64) -> Box<dyn Dispatcher>,
    instance: &Instance,
    seeds: &[u64],
) -> SeededEval {
    let mut nuvs = Vec::with_capacity(seeds.len());
    let mut costs = Vec::with_capacity(seeds.len());
    let mut name = String::new();
    for &seed in seeds {
        let mut d = make(seed);
        let row = evaluate(d.as_mut(), instance);
        name = row.algo;
        nuvs.push(row.nuv as f64);
        costs.push(row.total_cost);
    }
    SeededEval {
        algo: name,
        nuv: mean_std(&nuvs),
        total_cost: mean_std(&costs),
        runs: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::presets::Presets;

    #[test]
    fn evaluate_times_and_reports() {
        let p = Presets::quick();
        let inst = p.tiny_instance(6, 7);
        let mut b1 = models::baseline1();
        let row = evaluate(&mut *b1, &inst);
        assert_eq!(row.algo, "Baseline1");
        assert_eq!(row.served + row.rejected, 6);
        assert!(row.wall_secs >= 0.0);
        assert!(row.total_cost > 0.0);
        assert!(row.epochs >= 1 && row.epochs <= 6);
    }

    #[test]
    fn evaluate_threads_reports_identical_metrics() {
        let p = Presets::quick();
        let inst = p.tiny_instance(6, 7);
        let serial = evaluate(&mut *models::baseline1(), &inst);
        let parallel = evaluate_threads(&mut *models::baseline1(), &inst, 4);
        assert_eq!(serial.nuv, parallel.nuv);
        assert_eq!(serial.total_cost, parallel.total_cost);
        assert_eq!(serial.ttl, parallel.ttl);
        assert_eq!(serial.served, parallel.served);
        assert_eq!(serial.epochs, parallel.epochs);
    }

    #[test]
    fn evaluate_seeds_aggregates_runs() {
        let p = Presets::quick();
        let inst = p.tiny_instance(5, 3);
        // A deterministic heuristic: zero variance across "seeds".
        let agg = evaluate_seeds(|_| models::baseline1(), &inst, &[1, 2, 3]);
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.algo, "Baseline1");
        assert_eq!(agg.nuv.std, 0.0);
        assert_eq!(agg.total_cost.std, 0.0);
        assert!(agg.total_cost.mean > 0.0);
    }

    #[test]
    fn mean_std_math() {
        let ms = mean_std(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_row_averages() {
        let rows = vec![
            EvalRow {
                algo: "X".into(),
                nuv: 2,
                total_cost: 100.0,
                ttl: 10.0,
                served: 5,
                rejected: 0,
                rejections: RejectionCounts::default(),
                wall_secs: 0.5,
                epochs: 5,
            },
            EvalRow {
                algo: "X".into(),
                nuv: 4,
                total_cost: 200.0,
                ttl: 30.0,
                served: 5,
                rejected: 2,
                rejections: RejectionCounts {
                    no_feasible_vehicle: 2,
                    ..RejectionCounts::default()
                },
                wall_secs: 0.5,
                epochs: 5,
            },
        ];
        let m = mean_row(&rows).unwrap();
        assert_eq!(m.nuv, 3);
        assert!((m.total_cost - 150.0).abs() < 1e-12);
        assert!((m.ttl - 20.0).abs() < 1e-12);
        assert!((m.wall_secs - 1.0).abs() < 1e-12);
        assert_eq!(m.rejections.no_feasible_vehicle, 1);
        assert_eq!(m.rejected, m.rejections.total());
        assert!(mean_row(&[]).is_none());
    }

    #[test]
    fn evaluate_streams_rejection_breakdown() {
        let p = Presets::quick();
        let inst = p.tiny_instance(6, 7);
        let row = evaluate(&mut *models::baseline1(), &inst);
        assert_eq!(row.rejections.total(), row.rejected);
        assert_eq!(row.served + row.rejected, 6);
    }
}
