//! Instance presets matching the three scales of the paper's evaluation,
//! plus the metro multi-cluster scenario for region-sharded dispatch.

use dpdp_data::{Dataset, DatasetConfig, StdMatrix};
use dpdp_net::{Instance, TimeDelta, TimePoint};
use dpdp_sim::DisruptionConfig;

/// Builds the paper's instance families from one shared synthetic dataset.
///
/// * **tiny** — 5 vehicles serving 6–10 orders (Table I);
/// * **large** — 50 vehicles serving 150 orders, sampled from the train-day
///   pool (Fig. 6, 8, 9, 10);
/// * **industry** — a full generated test day with 150 vehicles and 600+
///   orders (Fig. 7);
/// * **metro** ([`Presets::metro`]) — a city-scale multi-hotspot scenario
///   with distinct per-hotspot order-rate profiles, region-local demand
///   and deadlines tight enough that cross-region service is usually
///   hopeless — the workload `SimulatorBuilder::sharding` is built for;
/// * **megacity** ([`Presets::megacity`]) — the metro pattern pushed to
///   the paper's industry scale (64 hotspots, ~100k orders/day, fleets of
///   10k+): the workload for hierarchical two-level `ShardConfig`s.
#[derive(Debug, Clone)]
pub struct Presets {
    dataset: Dataset,
}

impl Presets {
    /// Paper-scale presets (~600 orders/day).
    pub fn paper() -> Self {
        Presets {
            dataset: Dataset::new(DatasetConfig::default()),
        }
    }

    /// A reduced-volume variant for tests and fast smoke runs
    /// (~120 orders/day, same structure).
    pub fn quick() -> Self {
        let mut cfg = DatasetConfig::default();
        cfg.generator.orders_per_day = 120;
        Presets {
            dataset: Dataset::new(cfg),
        }
    }

    /// Presets over a custom dataset configuration.
    pub fn with_config(cfg: DatasetConfig) -> Self {
        Presets {
            dataset: Dataset::new(cfg),
        }
    }

    /// The metro scenario: four spatial hotspots on a 100 km city, one
    /// depot and seven factories per hotspot, staggered per-hotspot demand
    /// peaks, 85% of deliveries staying in their pickup's hotspot, and
    /// 40–90 minute deadline slack — at 40 km/h the ≥ 60 road-km between
    /// hotspots exceeds even the loosest deadline, so nearly every
    /// cross-region `(order, vehicle)` pair is provably infeasible: the
    /// workload the region-sharded dispatch pipeline prunes.
    pub fn metro(seed: u64) -> Self {
        let mut cfg = DatasetConfig::default();
        cfg.campus.num_depots = 4;
        cfg.campus.num_factories = 28;
        cfg.campus.area_km = 100.0;
        cfg.campus.hotspots = 4;
        cfg.campus.hotspot_spread_km = 1.5;
        cfg.campus.seed = seed ^ 0x6D65_7472; // "metr"
        cfg.generator.orders_per_day = 400;
        cfg.generator.min_slack = TimeDelta::from_minutes(40.0);
        cfg.generator.max_slack = TimeDelta::from_minutes(90.0);
        cfg.generator.intra_cluster_bias = 0.85;
        cfg.generator.seed = seed;
        Presets::with_config(cfg)
    }

    /// The metro scenario under seeded disruptions: the same spatial
    /// workload as [`Presets::metro`] plus a [`DisruptionConfig`] tuned so
    /// a day is never quiet — roughly 8% of orders cancel (uniformly
    /// within 45 minutes of creation, so buffered dispatch sees both
    /// pre-dispatch drops and post-assignment route surgery) and about a
    /// fifth of the fleet breaks down during business hours, recovering
    /// after 30–120 minutes. Arm the config via
    /// `SimulatorBuilder::disruptions`; the simulator seed drives the
    /// draws through dedicated RNG streams, so the underlying instance is
    /// bit-identical to the undisrupted metro scenario.
    pub fn metro_disrupted(seed: u64) -> (Self, DisruptionConfig) {
        let config = DisruptionConfig {
            cancellation_prob: 0.08,
            cancellation_delay: TimeDelta::from_minutes(45.0),
            breakdown_prob: 0.2,
            breakdown_window: (TimePoint::from_hours(8.0), TimePoint::from_hours(18.0)),
            recovery_delay: Some((
                TimeDelta::from_minutes(30.0),
                TimeDelta::from_minutes(120.0),
            )),
        };
        (Presets::metro(seed), config)
    }

    /// A metro-scale instance: `num_orders` orders sampled from the train
    /// pool over `num_vehicles` vehicles (round-robin across the four
    /// hotspot depots). Use with [`Presets::metro`].
    pub fn metro_instance(&self, num_orders: usize, num_vehicles: usize, seed: u64) -> Instance {
        let days = self.dataset.config().train_days.clone();
        self.dataset
            .sampled_instance(days.start..days.start + 5, num_orders, num_vehicles, seed)
    }

    /// The megacity scenario — the paper's industry scale (§ I: thousands
    /// of vehicles, ~10⁵ orders/day) as one workload: sixty-four spatial
    /// hotspots ringed around a 1200 km megaregion corridor, one depot and
    /// ten factories per hotspot, ~100k generated orders per day, 90% of
    /// deliveries staying in their pickup's hotspot, and 30–60 minute
    /// deadline slack. At 40 km/h the ≥ 40 road-km between even adjacent
    /// hotspots exceeds the loosest deadline, so cross-hotspot service is
    /// essentially always provably infeasible — the workload the two-level
    /// hierarchical `ShardConfig` (coarse regions → fine cells, demand-fed
    /// re-partitioning) exists for. The flat fleet scan grinds through
    /// `B x K` sweeps against a five-digit fleet here; hierarchical
    /// sharding keeps each sweep inside a hotspot-sized cell (the
    /// bench-smoke gate holds it to a ≥ 5× wall-time win).
    pub fn megacity(seed: u64) -> Self {
        let mut cfg = DatasetConfig::default();
        cfg.campus.num_depots = 64;
        cfg.campus.num_factories = 640;
        cfg.campus.area_km = 1200.0;
        cfg.campus.hotspots = 64;
        cfg.campus.hotspot_spread_km = 2.0;
        cfg.campus.seed = seed ^ 0x6D65_6761; // "mega"
        cfg.generator.orders_per_day = 100_000;
        cfg.generator.min_slack = TimeDelta::from_minutes(30.0);
        cfg.generator.max_slack = TimeDelta::from_minutes(60.0);
        cfg.generator.intra_cluster_bias = 0.9;
        cfg.generator.seed = seed;
        Presets::with_config(cfg)
    }

    /// A megacity-scale instance: `num_orders` orders sampled from one
    /// ~100k-order generated day over `num_vehicles` vehicles (round-robin
    /// across the sixty-four hotspot depots). Use with [`Presets::megacity`];
    /// the bench's megacity scenario runs 10 000 vehicles through this.
    pub fn megacity_instance(&self, num_orders: usize, num_vehicles: usize, seed: u64) -> Instance {
        let days = self.dataset.config().train_days.clone();
        self.dataset
            .sampled_instance(days.start..days.start + 1, num_orders, num_vehicles, seed)
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// A tiny instance: 5 vehicles, `num_orders` orders sampled from the
    /// train pool (Table I uses 6, 7, 8 and 10).
    pub fn tiny_instance(&self, num_orders: usize, seed: u64) -> Instance {
        let days = self.dataset.config().train_days.clone();
        self.dataset
            .sampled_instance(days.start..days.start + 5, num_orders, 5, seed)
    }

    /// A large-scale instance: 50 vehicles, 150 orders.
    pub fn large_instance(&self, seed: u64) -> Instance {
        let days = self.dataset.config().train_days.clone();
        self.dataset
            .sampled_instance(days.start..days.start + 10, 150, 50, seed)
    }

    /// A large-scale *test* instance sampled from held-out days.
    pub fn large_test_instance(&self, seed: u64) -> Instance {
        let days = self.dataset.config().test_days.clone();
        self.dataset.sampled_instance(days, 150, 50, seed)
    }

    /// An industry-scale instance: one full held-out day, 150 vehicles.
    pub fn industry_instance(&self, test_day_offset: u64) -> Instance {
        let days = self.dataset.config().test_days.clone();
        let day = days.start + test_day_offset;
        assert!(day < days.end, "test day offset out of range");
        self.dataset.day_instance(day, 150)
    }

    /// The predicted STD matrix ST-models should use for train-pool
    /// instances: the mean over the first `k` train days (Eq. (3)).
    pub fn train_prediction(&self, k: usize) -> StdMatrix {
        let days = self.dataset.config().train_days.clone();
        self.dataset.predicted_std(days.start + k as u64, k)
    }

    /// The predicted STD matrix for a given test day (mean of the `k`
    /// preceding days).
    pub fn test_prediction(&self, test_day_offset: u64, k: usize) -> StdMatrix {
        let days = self.dataset.config().test_days.clone();
        self.dataset.predicted_std(days.start + test_day_offset, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_instances_have_requested_scale() {
        let p = Presets::quick();
        for n in [6, 7, 8, 10] {
            let inst = p.tiny_instance(n, 42);
            assert_eq!(inst.num_orders(), n);
            assert_eq!(inst.num_vehicles(), 5);
        }
    }

    #[test]
    fn large_instance_matches_paper_scale() {
        let p = Presets::quick();
        let inst = p.large_instance(1);
        assert_eq!(inst.num_orders(), 150);
        assert_eq!(inst.num_vehicles(), 50);
        // Train and test samples differ.
        let test = p.large_test_instance(1);
        assert_ne!(inst.orders(), test.orders());
    }

    #[test]
    fn industry_instance_is_a_full_day() {
        let p = Presets::quick();
        let inst = p.industry_instance(0);
        assert_eq!(inst.num_vehicles(), 150);
        assert!(inst.num_orders() > 60, "got {}", inst.num_orders());
    }

    #[test]
    fn predictions_have_campus_shape() {
        let p = Presets::quick();
        let m = p.train_prediction(4);
        assert_eq!(m.num_factories(), 27);
        assert_eq!(m.num_intervals(), 144);
        assert!(m.total() > 0.0);
        let t = p.test_prediction(0, 4);
        assert!(t.total() > 0.0);
    }

    #[test]
    fn metro_instance_is_cluster_local_and_shardable() {
        let p = Presets::metro(7);
        let inst = p.metro_instance(120, 32, 1);
        assert_eq!(inst.num_orders(), 120);
        assert_eq!(inst.num_vehicles(), 32);
        assert!(inst.network.is_metric(), "sharding needs the metric bound");
        // Vehicles spread across all four hotspot depots.
        let depots: std::collections::BTreeSet<_> =
            inst.fleet.vehicles.iter().map(|v| v.depot).collect();
        assert_eq!(depots.len(), 4);
    }

    #[test]
    fn megacity_instance_spans_all_hotspots_at_scale() {
        let p = Presets::megacity(7);
        assert_eq!(p.dataset().config().generator.orders_per_day, 100_000);
        let inst = p.megacity_instance(300, 64, 1);
        assert_eq!(inst.num_orders(), 300);
        assert_eq!(inst.num_vehicles(), 64);
        assert!(inst.network.is_metric(), "sharding needs the metric bound");
        let depots: std::collections::BTreeSet<_> =
            inst.fleet.vehicles.iter().map(|v| v.depot).collect();
        assert_eq!(depots.len(), 64, "vehicles round-robin all hotspot depots");
    }

    #[test]
    fn metro_disrupted_is_metro_plus_a_live_disruption_config() {
        let (p, cfg) = Presets::metro_disrupted(7);
        assert!(!cfg.is_vacuous());
        assert!(cfg.cancellation_prob >= 0.01, "the smoke gate needs >= 1%");
        assert!(cfg.breakdown_prob > 0.0);
        // The spatial workload is the undisrupted metro scenario.
        let plain = Presets::metro(7);
        assert_eq!(
            p.metro_instance(40, 8, 1).orders(),
            plain.metro_instance(40, 8, 1).orders()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn industry_offset_out_of_range_panics() {
        let p = Presets::quick();
        let _ = p.industry_instance(999);
    }
}
