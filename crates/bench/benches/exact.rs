//! Exact-solver scaling: branch-and-bound wall time versus order count —
//! the blow-up that makes the MIP/exact approach intractable in the paper
//! beyond ~8 orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpdp_baselines::{ExactConfig, ExactSolver};
use dpdp_core::prelude::*;

fn bench_exact_scaling(c: &mut Criterion) {
    let presets = Presets::quick();
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    for &n in &[3usize, 4, 5, 6] {
        let instance = presets.tiny_instance(n, 11);
        group.bench_with_input(BenchmarkId::new("orders", n), &instance, |b, inst| {
            b.iter(|| {
                let solver = ExactSolver {
                    config: ExactConfig {
                        time_limit: Some(std::time::Duration::from_secs(10)),
                        node_limit: None,
                    },
                };
                std::hint::black_box(solver.solve(inst))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_scaling);
criterion_main!(benches);
