//! Route-planner microbenchmarks: insertion evaluation (Algorithm 2)
//! throughput as a function of route length — naive O(n³) reference vs the
//! incremental O(n²) prefix/suffix-cached evaluator, the SoA schedule
//! cache vs the retained AoS reference layout, and the batched
//! distance-row kernels vs per-call matrix reads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpdp_bench::{insertion_fixture, insertion_fixture_with_probes};
use dpdp_core::prelude::*;
use dpdp_routing::{
    sweep_best, sweep_best_aos, AosScheduleCache, PlannerMode, RoutePlanner, ScheduleCache,
    VehicleView,
};
use dpdp_sim::Simulator;

/// Builds a view whose route already carries `orders_on_route` orders by
/// replaying a greedy single-vehicle run.
fn loaded_view(instance: &Instance, orders_on_route: usize) -> VehicleView {
    let conf = &instance.fleet.vehicles[0];
    let mut view = VehicleView::idle_at_depot(conf.id, conf.depot);
    let planner = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
    for order in instance.orders().iter().take(orders_on_route) {
        if let Some(best) = planner.plan(&view, order).best {
            view.route = best.candidate.route;
            view.used = true;
        }
    }
    view
}

fn bench_insertion(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.tiny_instance(10, 3);
    let planner = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
    let probe = &instance.orders()[9];

    let mut group = c.benchmark_group("route_planner");
    for &n in &[0usize, 2, 4, 8] {
        let view = loaded_view(&instance, n);
        group.bench_with_input(
            BenchmarkId::new("best_insertion_orders", n),
            &view,
            |b, view| b.iter(|| std::hint::black_box(planner.plan(view, probe))),
        );
    }
    group.finish();
}

/// Head-to-head: the naive enumerate-and-resimulate reference vs the
/// incremental evaluator on the same loose ring fixture, route lengths
/// n = 4, 8, 16 and 32 stops. The acceptance bar for this PR is >= 3x at
/// n = 16 (the real gap grows with n; the CI bench-smoke job gates on the
/// wall times archived by the `table1` binary).
fn bench_naive_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion_sweep");
    for &orders_on_route in &[2usize, 4, 8, 16] {
        let (instance, view) = insertion_fixture(orders_on_route);
        let probe = instance.orders().last().unwrap();
        let n = 2 * orders_on_route;
        let incremental = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
        let naive = RoutePlanner::with_mode(
            &instance.network,
            &instance.fleet,
            instance.orders(),
            PlannerMode::Naive,
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &view, |b, view| {
            b.iter(|| std::hint::black_box(incremental.plan(view, probe)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &view, |b, view| {
            b.iter(|| std::hint::black_box(naive.plan(view, probe)))
        });
    }
    group.finish();
}

/// Head-to-head on the epoch-shaped `B × K` workload (cache rebuild + ten
/// distinct probe sweeps): the SoA [`ScheduleCache`] sweep vs the retained
/// AoS reference layout. Bit-identical winners by construction (the parity
/// suites assert it); this group tracks the layout's wall-time edge — the
/// SoA path reads its persisted base-leg tables where the AoS walk
/// re-derives each leg with a matrix read and a division.
fn bench_soa_vs_aos_sweep(c: &mut Criterion) {
    const B: usize = 10;
    let mut group = c.benchmark_group("soa_vs_aos_sweep");
    for &orders_on_route in &[4usize, 8, 16] {
        let (instance, view) = insertion_fixture_with_probes(orders_on_route, B);
        let net = &instance.network;
        let fleet = &instance.fleet;
        let orders = instance.orders();
        let probes: Vec<_> = orders.iter().rev().take(B).collect();
        let n = 2 * orders_on_route;
        group.bench_with_input(BenchmarkId::new("soa", n), &view, |b, view| {
            let mut cache = ScheduleCache::default();
            b.iter(|| {
                cache.rebuild(view, net, fleet, orders);
                for probe in &probes {
                    std::hint::black_box(sweep_best(&cache, view, probe, net, fleet, orders));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("aos", n), &view, |b, view| {
            b.iter(|| {
                let cache = AosScheduleCache::build(view, net, fleet, orders);
                for probe in &probes {
                    std::hint::black_box(sweep_best_aos(&cache, view, probe, net, fleet, orders));
                }
            })
        });
    }
    group.finish();
}

/// The batched distance/travel-time row kernels vs an equivalent loop of
/// per-call matrix reads: one row of `d(anchor, target_i)` plus its
/// travel-time conversion, the exact shape `plan_sweep` fills per anchor
/// slot. Bit-identical outputs; the kernels amortize index arithmetic and
/// bounds checks and keep the divisions in one pipelined loop.
fn bench_batched_distance_row(c: &mut Criterion) {
    let (instance, _) = insertion_fixture(8);
    let net = &instance.network;
    let fleet = &instance.fleet;
    let nodes = net.nodes();
    let anchor = nodes[0].id;
    let mut group = c.benchmark_group("batched_distance_row");
    for &width in &[16usize, 64, 256] {
        let targets: Vec<_> = (0..width).map(|i| nodes[i % nodes.len()].id).collect();
        let mut dist = vec![0.0; width];
        let mut tt = vec![dpdp_net::TimeDelta::ZERO; width];
        group.bench_with_input(BenchmarkId::new("batched", width), &targets, |b, targets| {
            b.iter(|| {
                net.distances_from(anchor, targets, &mut dist);
                fleet.travel_times(&dist, &mut tt);
                std::hint::black_box((&dist, &tt));
            })
        });
        group.bench_with_input(BenchmarkId::new("per_call", width), &targets, |b, targets| {
            b.iter(|| {
                for (i, &t) in targets.iter().enumerate() {
                    dist[i] = net.distance(anchor, t);
                    tt[i] = fleet.travel_time(dist[i]);
                }
                std::hint::black_box((&dist, &tt));
            })
        });
    }
    group.finish();
}

fn bench_episode_planning(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.tiny_instance(10, 3);
    c.bench_function("simulate_10_orders_baseline1", |b| {
        b.iter(|| {
            let mut b1 = Baseline1;
            std::hint::black_box(Simulator::builder(&instance).build().unwrap().run(&mut b1))
        })
    });
}

criterion_group!(
    benches,
    bench_insertion,
    bench_naive_vs_incremental,
    bench_soa_vs_aos_sweep,
    bench_batched_distance_row,
    bench_episode_planning
);
criterion_main!(benches);
