//! Route-planner microbenchmarks: insertion evaluation (Algorithm 2)
//! throughput as a function of route length, naive O(n³) reference vs the
//! incremental O(n²) prefix/suffix-cached evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpdp_bench::insertion_fixture;
use dpdp_core::prelude::*;
use dpdp_routing::{PlannerMode, RoutePlanner, VehicleView};
use dpdp_sim::Simulator;

/// Builds a view whose route already carries `orders_on_route` orders by
/// replaying a greedy single-vehicle run.
fn loaded_view(instance: &Instance, orders_on_route: usize) -> VehicleView {
    let conf = &instance.fleet.vehicles[0];
    let mut view = VehicleView::idle_at_depot(conf.id, conf.depot);
    let planner = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
    for order in instance.orders().iter().take(orders_on_route) {
        if let Some(best) = planner.plan(&view, order).best {
            view.route = best.candidate.route;
            view.used = true;
        }
    }
    view
}

fn bench_insertion(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.tiny_instance(10, 3);
    let planner = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
    let probe = &instance.orders()[9];

    let mut group = c.benchmark_group("route_planner");
    for &n in &[0usize, 2, 4, 8] {
        let view = loaded_view(&instance, n);
        group.bench_with_input(
            BenchmarkId::new("best_insertion_orders", n),
            &view,
            |b, view| b.iter(|| std::hint::black_box(planner.plan(view, probe))),
        );
    }
    group.finish();
}

/// Head-to-head: the naive enumerate-and-resimulate reference vs the
/// incremental evaluator on the same loose ring fixture, route lengths
/// n = 4, 8, 16 and 32 stops. The acceptance bar for this PR is >= 3x at
/// n = 16 (the real gap grows with n; the CI bench-smoke job gates on the
/// wall times archived by the `table1` binary).
fn bench_naive_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("insertion_sweep");
    for &orders_on_route in &[2usize, 4, 8, 16] {
        let (instance, view) = insertion_fixture(orders_on_route);
        let probe = instance.orders().last().unwrap();
        let n = 2 * orders_on_route;
        let incremental = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
        let naive = RoutePlanner::with_mode(
            &instance.network,
            &instance.fleet,
            instance.orders(),
            PlannerMode::Naive,
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &view, |b, view| {
            b.iter(|| std::hint::black_box(incremental.plan(view, probe)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &view, |b, view| {
            b.iter(|| std::hint::black_box(naive.plan(view, probe)))
        });
    }
    group.finish();
}

fn bench_episode_planning(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.tiny_instance(10, 3);
    c.bench_function("simulate_10_orders_baseline1", |b| {
        b.iter(|| {
            let mut b1 = Baseline1;
            std::hint::black_box(Simulator::builder(&instance).build().unwrap().run(&mut b1))
        })
    });
}

criterion_group!(
    benches,
    bench_insertion,
    bench_naive_vs_incremental,
    bench_episode_planning
);
criterion_main!(benches);
