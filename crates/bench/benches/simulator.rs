//! Simulator throughput: full large-scale episodes under each greedy
//! baseline (the fixed cost every dispatcher comparison pays).

use criterion::{criterion_group, criterion_main, Criterion};
use dpdp_core::prelude::*;

fn bench_large_episode(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.large_instance(5);
    let mut group = c.benchmark_group("simulator_large_150_orders_50_vehicles");
    group.sample_size(10);
    group.bench_function("baseline1", |b| {
        b.iter(|| {
            let mut d = Baseline1;
            std::hint::black_box(Simulator::builder(&instance).build().unwrap().run(&mut d))
        })
    });
    group.bench_function("baseline3", |b| {
        b.iter(|| {
            let mut d = Baseline3::default();
            std::hint::black_box(Simulator::builder(&instance).build().unwrap().run(&mut d))
        })
    });
    group.finish();
}

fn bench_industry_episode(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.industry_instance(0);
    let mut group = c.benchmark_group("simulator_industry_day");
    group.sample_size(10);
    group.bench_function("baseline1", |b| {
        b.iter(|| {
            let mut d = Baseline1;
            std::hint::black_box(Simulator::builder(&instance).build().unwrap().run(&mut d))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_large_episode, bench_industry_episode);
criterion_main!(benches);
