//! Neural-network benchmarks: ST-DDGN Q-network forward and
//! forward+backward at fleet scale, with and without the graph pathway
//! (quantifying the cost of neighbourhood attention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpdp_nn::{Graph, ParamStore, Tensor};
use dpdp_rl::{QNetwork, QNetworkConfig, StateSnapshot};

fn snapshot(k: usize, ne: usize) -> StateSnapshot {
    let features = Tensor::from_vec(k, 5, (0..k * 5).map(|i| (i as f64 * 0.17).sin()).collect());
    let neighbors = (0..k)
        .map(|i| {
            let mut v = vec![i];
            v.extend((0..k).filter(|&j| j != i).take(ne - 1));
            v
        })
        .collect();
    StateSnapshot {
        features,
        feasible: vec![true; k],
        neighbors,
    }
}

fn bench_qnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnet");
    group.sample_size(20);
    for &(k, graph) in &[(50usize, true), (50, false), (150, true)] {
        let mut store = ParamStore::new(0);
        let net = QNetwork::new(
            &mut store,
            QNetworkConfig {
                hidden: 32,
                heads: 4,
                levels: 2,
                graph,
            },
        );
        let snap = snapshot(k, 8);
        let label = format!("K{k}_graph{graph}");
        group.bench_with_input(BenchmarkId::new("forward", &label), &snap, |b, snap| {
            b.iter(|| std::hint::black_box(net.q_values(&store, snap)))
        });
        group.bench_with_input(
            BenchmarkId::new("forward_backward", &label),
            &snap,
            |b, snap| {
                b.iter(|| {
                    let mut store2 = store.clone();
                    let mut g = Graph::new();
                    let q = net.forward(&mut g, &store2, snap);
                    let loss = g.sum_all(q);
                    g.backward(loss, &mut store2);
                    std::hint::black_box(store2.grad(dpdp_nn::ParamId(0)).norm())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qnet);
criterion_main!(benches);
