//! Table I's wall-time columns: DRL inference for a whole tiny episode vs
//! one exact solve. The paper's shape — sub-second DRL inference against
//! minutes-scale exact optimisation — should reproduce as a gap of several
//! orders of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use dpdp_baselines::{ExactConfig, ExactSolver};
use dpdp_core::models;
use dpdp_core::prelude::*;

fn bench_table1_walltime(c: &mut Criterion) {
    let presets = Presets::quick();
    let instance = presets.tiny_instance(6, 7);

    let mut group = c.benchmark_group("table1_walltime_6_orders");
    group.sample_size(10);

    // DRL inference: a full greedy ST-DDGN episode (untrained weights; the
    // cost is architecture-, not weight-dependent).
    let mut agent = models::dqn_agent(dpdp_rl::ModelKind::StDdgn, presets.dataset(), 0);
    agent.set_prediction(Some(presets.train_prediction(4)));
    agent.set_training(false);
    group.bench_function("st_ddgn_episode_inference", |b| {
        b.iter(|| {
            std::hint::black_box(
                Simulator::builder(&instance)
                    .build()
                    .unwrap()
                    .run(&mut agent),
            )
        })
    });

    // Exact solve of the same instance (node-capped to keep criterion
    // iterations bounded; the full solve is measured by the table1 binary).
    group.bench_function("exact_solve_capped", |b| {
        b.iter(|| {
            let solver = ExactSolver {
                config: ExactConfig {
                    time_limit: Some(std::time::Duration::from_secs(5)),
                    node_limit: Some(200_000),
                },
            };
            std::hint::black_box(solver.solve(&instance))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1_walltime);
criterion_main!(benches);
