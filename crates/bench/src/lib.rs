//! Shared harness for the table/figure regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4). This library provides the common plumbing: CLI
//! parsing, model training with the right ST-prediction wiring, and result
//! output to `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dpdp_core::models::{self, ModelSpec};
use dpdp_core::prelude::*;
use dpdp_rl::TrainerConfig;
use std::path::PathBuf;

/// Which scenario family a benchmark run exercises (`--scenario`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's single-campus workload (the default).
    #[default]
    Campus,
    /// The multi-hotspot metro workload (`Presets::metro`).
    Metro,
    /// Metro plus seeded cancellations and vehicle breakdowns
    /// (`Presets::metro_disrupted`); the disruption seed is the master
    /// `--seed` and is recorded in the benchmark JSON so perf
    /// trajectories stay comparable across scenarios.
    MetroDisrupted,
    /// The industry-scale megacity workload (`Presets::megacity`): a
    /// 10k-vehicle fleet under a hierarchical two-level `ShardConfig`
    /// versus the flat fleet scan, gated on a ≥ 5× wall-time win
    /// (`table1` runs *only* this stage under the scenario — the regular
    /// Table I lineup would dwarf the gate's runtime).
    Megacity,
}

impl Scenario {
    /// Every scenario, in CLI advertisement order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Campus,
        Scenario::Metro,
        Scenario::MetroDisrupted,
        Scenario::Megacity,
    ];

    /// The scenario's canonical CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Campus => "campus",
            Scenario::Metro => "metro",
            Scenario::MetroDisrupted => "metro_disrupted",
            Scenario::Megacity => "megacity",
        }
    }

    fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// The comma-separated list of valid names, for error messages.
    fn names() -> String {
        Scenario::ALL.map(Scenario::name).join(", ")
    }
}

/// Minimal CLI: `--episodes N`, `--instances N`, `--quick` (smaller
/// dataset), `--seed N`, `--threads N`, `--shards LIST`,
/// `--scenario NAME`.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Training episodes for learned models.
    pub episodes: usize,
    /// Number of evaluation instances.
    pub instances: usize,
    /// Use the reduced-volume dataset.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Scoring pool width for evaluation episodes (1 = serial; results are
    /// identical for every width, only wall time moves).
    pub threads: usize,
    /// Shard counts the shard-sweep measurements run at (comma-separated
    /// `--shards 1,4`; results are identical for every count, only wall
    /// time moves). Consumed by `table1`'s metro shard sweep.
    pub shards: Vec<usize>,
    /// Scenario family (`--scenario campus|metro|metro_disrupted`).
    /// Selects which *scenario-specific* sections a benchmark binary adds
    /// (e.g. `table1`'s disrupted smoke episode); the fixed campus rows
    /// every run produces are unaffected. Recorded in the benchmark JSON
    /// header together with the disruption seed so the scenario rows stay
    /// comparable across runs.
    pub scenario: Scenario,
}

/// Why a command line was rejected (see [`Cli::parse_from`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument that is not one of the known flags.
    UnknownFlag(String),
    /// A value-taking flag appeared last, with nothing after it.
    MissingValue(&'static str),
    /// A flag's value failed to parse or was out of range.
    InvalidValue {
        /// The flag whose value was malformed.
        flag: &'static str,
        /// The offending value.
        value: String,
    },
    /// `--scenario` named a scenario that does not exist; the error lists
    /// the valid names so a typo is self-correcting.
    UnknownScenario(String),
    /// `--help` / `-h` was given.
    HelpRequested,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "flag `{flag}` got an invalid value `{value}`")
            }
            CliError::UnknownScenario(value) => {
                write!(
                    f,
                    "unknown scenario `{value}`; valid scenarios: {}",
                    Scenario::names()
                )
            }
            CliError::HelpRequested => write!(f, "help requested"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage text shared by every regenerator binary.
pub const USAGE: &str = "\
options:
  --episodes N    training episodes for learned models
  --instances N   number of evaluation instances
  --seed N        master seed
  --threads N     scoring pool width (1 = serial; results are identical)
  --shards LIST   comma-separated shard counts for the shard sweep
                  (e.g. 1,4; results are identical, only wall time moves)
  --scenario NAME scenario family: campus (default), metro,
                  metro_disrupted (seeded cancellations + breakdowns), or
                  megacity (10k-vehicle hierarchical-sharding gate)
  --quick         use the reduced-volume dataset
  -h, --help      print this help";

impl Cli {
    /// Parses `std::env::args` with the given defaults. Unknown flags and
    /// malformed numeric values are reported to stderr and exit the process
    /// with status 2 (a typo like `--episode 500` must not silently run the
    /// defaults); `--help` prints usage and exits 0.
    pub fn parse(default_episodes: usize, default_instances: usize) -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Cli::parse_from(&args, default_episodes, default_instances) {
            Ok(cli) => cli,
            Err(CliError::HelpRequested) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (no program name), with the given
    /// defaults.
    ///
    /// # Errors
    /// Rejects unknown flags, value-less value flags, and non-numeric
    /// values; reports `--help` as [`CliError::HelpRequested`].
    pub fn parse_from(
        args: &[String],
        default_episodes: usize,
        default_instances: usize,
    ) -> Result<Cli, CliError> {
        let mut cli = Cli {
            episodes: default_episodes,
            instances: default_instances,
            quick: false,
            seed: 7,
            threads: 1,
            shards: vec![1],
            scenario: Scenario::default(),
        };
        fn numeric<T: std::str::FromStr>(
            flag: &'static str,
            value: Option<&String>,
        ) -> Result<T, CliError> {
            let value = value.ok_or(CliError::MissingValue(flag))?;
            value.parse().map_err(|_| CliError::InvalidValue {
                flag,
                value: value.clone(),
            })
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--episodes" => {
                    cli.episodes = numeric("--episodes", args.get(i + 1))?;
                    i += 1;
                }
                "--instances" => {
                    cli.instances = numeric("--instances", args.get(i + 1))?;
                    i += 1;
                }
                "--seed" => {
                    cli.seed = numeric("--seed", args.get(i + 1))?;
                    i += 1;
                }
                "--threads" => {
                    cli.threads = numeric("--threads", args.get(i + 1))?;
                    if cli.threads == 0 {
                        return Err(CliError::InvalidValue {
                            flag: "--threads",
                            value: "0".to_string(),
                        });
                    }
                    i += 1;
                }
                "--shards" => {
                    let value = args.get(i + 1).ok_or(CliError::MissingValue("--shards"))?;
                    let parsed: Result<Vec<usize>, _> =
                        value.split(',').map(str::parse::<usize>).collect();
                    match parsed {
                        Ok(list) if !list.is_empty() && list.iter().all(|&s| s >= 1) => {
                            cli.shards = list;
                        }
                        _ => {
                            return Err(CliError::InvalidValue {
                                flag: "--shards",
                                value: value.clone(),
                            })
                        }
                    }
                    i += 1;
                }
                "--scenario" => {
                    let value = args
                        .get(i + 1)
                        .ok_or(CliError::MissingValue("--scenario"))?;
                    cli.scenario = Scenario::parse(value)
                        .ok_or_else(|| CliError::UnknownScenario(value.clone()))?;
                    i += 1;
                }
                "--quick" => cli.quick = true,
                "--help" | "-h" => return Err(CliError::HelpRequested),
                other => return Err(CliError::UnknownFlag(other.to_string())),
            }
            i += 1;
        }
        Ok(cli)
    }

    /// Builds presets respecting `--quick`.
    pub fn presets(&self) -> Presets {
        if self.quick {
            Presets::quick()
        } else {
            Presets::paper()
        }
    }
}

/// A trained (or stateless) dispatcher, preserving concrete type access for
/// prediction wiring and mode switching.
pub enum Model {
    /// A DQN-family agent (boxed: the agents dwarf the heuristic variant).
    Dqn(Box<DqnAgent>),
    /// The actor-critic baseline.
    Ac(Box<ActorCriticAgent>),
    /// A stateless heuristic.
    Heuristic(Box<dyn Dispatcher>),
}

impl Model {
    /// Builds an untrained model for a spec.
    pub fn build(spec: ModelSpec, presets: &Presets, seed: u64) -> Model {
        match spec {
            ModelSpec::Baseline1 => Model::Heuristic(models::baseline1()),
            ModelSpec::Baseline2 => Model::Heuristic(models::baseline2()),
            ModelSpec::Baseline3 => Model::Heuristic(models::baseline3()),
            ModelSpec::ActorCritic => {
                Model::Ac(Box::new(models::actor_critic(presets.dataset(), seed)))
            }
            ModelSpec::Dqn(kind) => {
                Model::Dqn(Box::new(models::dqn_agent(kind, presets.dataset(), seed)))
            }
        }
    }

    /// The dispatcher view.
    pub fn dispatcher(&mut self) -> &mut dyn Dispatcher {
        match self {
            Model::Dqn(a) => a.as_mut(),
            Model::Ac(a) => a.as_mut(),
            Model::Heuristic(h) => h.as_mut(),
        }
    }

    /// Supplies the predicted STD matrix (no-op for models without ST).
    pub fn set_prediction(&mut self, prediction: Option<StdMatrix>) {
        if let Model::Dqn(a) = self {
            a.set_prediction(prediction);
        }
    }

    /// Switches between training and greedy evaluation mode.
    pub fn set_training(&mut self, training: bool) {
        match self {
            Model::Dqn(a) => a.set_training(training),
            Model::Ac(a) => a.set_training(training),
            Model::Heuristic(_) => {}
        }
    }

    /// Trains on one instance for `episodes`, returning the convergence
    /// curve; heuristics return a single evaluation point.
    pub fn train_on(
        &mut self,
        instance: &Instance,
        episodes: usize,
        trainer_cfg: Option<TrainerConfig>,
    ) -> dpdp_rl::TrainReport {
        let episodes = if matches!(self, Model::Heuristic(_)) {
            1
        } else {
            episodes
        };
        let cfg = trainer_cfg.unwrap_or_else(|| TrainerConfig::new(episodes));
        self.set_training(true);
        train(self.dispatcher(), instance, &cfg)
    }

    /// Trains on one instance for `episodes`, streaming every convergence
    /// point (and kept capacity snapshot) into `observer` instead of
    /// materializing a report — the observer-based pipeline the
    /// convergence-curve regenerators (`fig8`/`fig9`) ride. Returns the
    /// demand STD matrix when capacity recording is configured.
    pub fn train_on_observed(
        &mut self,
        instance: &Instance,
        episodes: usize,
        trainer_cfg: Option<TrainerConfig>,
        observer: &mut dyn TrainObserver,
    ) -> Option<StdMatrix> {
        let episodes = if matches!(self, Model::Heuristic(_)) {
            1
        } else {
            episodes
        };
        let cfg = trainer_cfg.unwrap_or_else(|| TrainerConfig::new(episodes));
        self.set_training(true);
        train_observed(self.dispatcher(), instance, &cfg, observer)
    }
}

/// Trains a model for a spec on `instance` with ST prediction wired from
/// the presets, then switches it to evaluation mode.
pub fn build_and_train(
    spec: ModelSpec,
    presets: &Presets,
    instance: &Instance,
    episodes: usize,
    seed: u64,
) -> Model {
    let mut model = Model::build(spec, presets, seed);
    model.set_prediction(Some(presets.train_prediction(4)));
    if spec.is_learned() {
        model.train_on(instance, episodes, None);
    }
    model.set_training(false);
    model
}

/// Writes experiment output under `target/experiments/` (best effort —
/// printing remains the primary channel).
pub fn write_artifact(name: &str, contents: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(name);
    std::fs::write(&path, contents).ok()?;
    Some(path)
}

/// Exits with status 1 when a record carries non-finite metrics — the one
/// guard the CI bench-smoke job relies on, applied to every archived row
/// (learned policies and the exact solver alike): a NaN cost must fail the
/// pipeline, not be archived as if it were a measurement.
pub fn check_finite(record: &BenchRecord) {
    if !(record.total_cost.is_finite() && record.wall_secs.is_finite()) {
        eprintln!(
            "error: non-finite metrics for {} on instance {}: {record:?}",
            record.algo, record.instance
        );
        std::process::exit(1);
    }
}

/// One record of a machine-readable benchmark artifact (see
/// [`bench_json`]).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Instance label (e.g. order count).
    pub instance: String,
    /// Algorithm name.
    pub algo: String,
    /// Number of used vehicles.
    pub nuv: usize,
    /// Total cost.
    pub total_cost: f64,
    /// Wall-clock seconds for the episode.
    pub wall_secs: f64,
    /// Decision epochs the episode went through.
    pub epochs: usize,
}

impl BenchRecord {
    /// Builds a record from an evaluation row.
    pub fn from_row(instance: impl Into<String>, row: &EvalRow) -> BenchRecord {
        BenchRecord {
            instance: instance.into(),
            algo: row.algo.clone(),
            nuv: row.nuv,
            total_cost: row.total_cost,
            wall_secs: row.wall_secs,
            epochs: row.epochs,
        }
    }
}

/// Renders a benchmark run as JSON (hand-rolled — the offline serde shim
/// has no serializer), recording the perf trajectory across PRs: wall time
/// per policy, the thread count it ran with, and epoch counts. The header
/// also records the `--scenario` family (which labels the run's
/// scenario-specific rows — the fixed campus rows are present in every
/// run) and, under `metro_disrupted`, the disruption seed.
pub fn bench_json(bench: &str, cli: &Cli, records: &[BenchRecord]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"instance\": \"{}\", \"algo\": \"{}\", \"nuv\": {}, \
                 \"total_cost\": {:.6}, \"wall_secs\": {:.9}, \"epochs\": {}}}",
                esc(&r.instance),
                esc(&r.algo),
                r.nuv,
                r.total_cost,
                r.wall_secs,
                r.epochs
            )
        })
        .collect();
    let shards: Vec<String> = cli.shards.iter().map(|s| s.to_string()).collect();
    let disruption_seed = match cli.scenario {
        Scenario::MetroDisrupted => cli.seed.to_string(),
        _ => "null".to_string(),
    };
    format!(
        "{{\n  \"bench\": \"{}\",\n  \"threads\": {},\n  \"shards\": [{}],\n  \
         \"scenario\": \"{}\",\n  \"disruption_seed\": {},\n  \
         \"episodes\": {},\n  \"seed\": {},\n  \"quick\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        esc(bench),
        cli.threads,
        shards.join(", "),
        cli.scenario.name(),
        disruption_seed,
        cli.episodes,
        cli.seed,
        cli.quick,
        rows.join(",\n")
    )
}

/// Deterministic fixture for insertion-sweep microbenchmarks: a ring of
/// factories with deliberately loose constraints (large capacity, 24 h
/// deadlines) and one vehicle already carrying `orders_on_route` orders —
/// i.e. a route of `2 * orders_on_route` stops — plus a probe order (the
/// instance's last) left off the route.
///
/// Looseness is the point: every greedy insertion stays feasible, so the
/// route length is exactly `2 * orders_on_route` and the naive vs
/// incremental comparison measures the evaluators, not the instance.
pub fn insertion_fixture(orders_on_route: usize) -> (Instance, dpdp_routing::VehicleView) {
    insertion_fixture_with_probes(orders_on_route, 1)
}

/// [`insertion_fixture`] generalized to leave `probes` orders off the
/// route: the instance's last `probes` orders are un-routed, so a `B × K`
/// epoch-shaped benchmark can sweep `B` *distinct* probe orders per cache
/// without tripping the duplicate-order fallback in
/// [`dpdp_routing::best_insertion_cached`].
pub fn insertion_fixture_with_probes(
    orders_on_route: usize,
    probes: usize,
) -> (Instance, dpdp_routing::VehicleView) {
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
        TimePoint,
    };
    const FACTORIES: usize = 12;
    let mut nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
    for f in 0..FACTORIES {
        let angle = f as f64 / FACTORIES as f64 * std::f64::consts::TAU;
        nodes.push(Node::factory(
            NodeId::from_index(f + 1),
            Point::new(25.0 * angle.cos(), 25.0 * angle.sin()),
        ));
    }
    let net = RoadNetwork::euclidean(nodes, 1.0).expect("valid ring network");
    let fleet = FleetConfig::homogeneous(
        1,
        &[NodeId(0)],
        1000.0,
        300.0,
        2.0,
        60.0,
        TimeDelta::from_minutes(2.0),
    )
    .expect("valid fleet");
    let orders: Vec<Order> = (0..orders_on_route + probes)
        .map(|i| {
            Order::new(
                OrderId(i as u32),
                NodeId::from_index(1 + (i % FACTORIES)),
                NodeId::from_index(1 + ((i + 3) % FACTORIES)),
                1.0,
                TimePoint::ZERO,
                TimePoint::from_hours(24.0),
            )
            .expect("valid order")
        })
        .collect();
    let instance =
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).expect("valid instance");
    let conf = &instance.fleet.vehicles[0];
    let mut view = dpdp_routing::VehicleView::idle_at_depot(conf.id, conf.depot);
    let planner =
        dpdp_routing::RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
    for order in instance.orders().iter().take(orders_on_route) {
        let best = planner
            .plan(&view, order)
            .best
            .expect("loose fixture keeps every insertion feasible");
        view.route = best.candidate.route;
        view.used = true;
    }
    assert_eq!(
        view.route.len(),
        2 * orders_on_route,
        "fixture must produce the requested route length"
    );
    (instance, view)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_known_flags() {
        let cli = Cli::parse_from(
            &argv(&[
                "--episodes",
                "250",
                "--quick",
                "--seed",
                "11",
                "--threads",
                "4",
            ]),
            60,
            3,
        )
        .unwrap();
        assert_eq!(cli.episodes, 250);
        assert_eq!(cli.instances, 3);
        assert!(cli.quick);
        assert_eq!(cli.seed, 11);
        assert_eq!(cli.threads, 4);
    }

    #[test]
    fn cli_defaults_apply_without_flags() {
        let cli = Cli::parse_from(&[], 60, 3).unwrap();
        assert_eq!(cli.episodes, 60);
        assert_eq!(cli.instances, 3);
        assert!(!cli.quick);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.threads, 1);
    }

    #[test]
    fn cli_rejects_zero_threads() {
        let err = Cli::parse_from(&argv(&["--threads", "0"]), 60, 3).unwrap_err();
        assert!(matches!(
            err,
            CliError::InvalidValue {
                flag: "--threads",
                ..
            }
        ));
    }

    #[test]
    fn cli_parses_shard_lists() {
        let cli = Cli::parse_from(&argv(&["--shards", "1,4,8"]), 60, 3).unwrap();
        assert_eq!(cli.shards, vec![1, 4, 8]);
        let cli = Cli::parse_from(&[], 60, 3).unwrap();
        assert_eq!(cli.shards, vec![1]);
        for bad in ["", "0", "1,x", "1,,4"] {
            let err = Cli::parse_from(&argv(&["--shards", bad]), 60, 3).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::InvalidValue {
                        flag: "--shards",
                        ..
                    }
                ),
                "{bad:?} must be rejected"
            );
        }
        let err = Cli::parse_from(&argv(&["--shards"]), 60, 3).unwrap_err();
        assert_eq!(err, CliError::MissingValue("--shards"));
    }

    #[test]
    fn cli_parses_scenarios() {
        let cli = Cli::parse_from(&argv(&["--scenario", "metro_disrupted"]), 60, 3).unwrap();
        assert_eq!(cli.scenario, Scenario::MetroDisrupted);
        assert_eq!(cli.scenario.name(), "metro_disrupted");
        let cli = Cli::parse_from(&argv(&["--scenario", "metro"]), 60, 3).unwrap();
        assert_eq!(cli.scenario, Scenario::Metro);
        let cli = Cli::parse_from(&argv(&["--scenario", "megacity"]), 60, 3).unwrap();
        assert_eq!(cli.scenario, Scenario::Megacity);
        assert_eq!(cli.scenario.name(), "megacity");
        let cli = Cli::parse_from(&[], 60, 3).unwrap();
        assert_eq!(cli.scenario, Scenario::Campus);
        let err = Cli::parse_from(&argv(&["--scenario", "mars"]), 60, 3).unwrap_err();
        assert_eq!(err, CliError::UnknownScenario("mars".to_string()));
        let msg = err.to_string();
        assert!(
            msg.contains("campus")
                && msg.contains("metro")
                && msg.contains("metro_disrupted")
                && msg.contains("megacity"),
            "the error must list every valid scenario: {msg}"
        );
        let err = Cli::parse_from(&argv(&["--scenario"]), 60, 3).unwrap_err();
        assert_eq!(err, CliError::MissingValue("--scenario"));
    }

    #[test]
    fn bench_json_records_scenario_and_disruption_seed() {
        let cli = Cli::parse_from(
            &argv(&["--scenario", "metro_disrupted", "--seed", "13"]),
            9,
            1,
        )
        .unwrap();
        let json = bench_json("table1", &cli, &[]);
        assert!(json.contains("\"scenario\": \"metro_disrupted\""));
        assert!(json.contains("\"disruption_seed\": 13"));
        let cli = Cli::parse_from(&[], 9, 1).unwrap();
        let json = bench_json("table1", &cli, &[]);
        assert!(json.contains("\"scenario\": \"campus\""));
        assert!(json.contains("\"disruption_seed\": null"));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let cli = Cli::parse_from(&argv(&["--threads", "2", "--quick"]), 9, 1).unwrap();
        let records = vec![BenchRecord {
            instance: "6".into(),
            algo: "ST-\"DDGN\"".into(),
            nuv: 3,
            total_cost: 1234.5,
            wall_secs: 0.25,
            epochs: 6,
        }];
        let json = bench_json("table1", &cli, &records);
        assert!(json.contains("\"bench\": \"table1\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"episodes\": 9"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\\\"DDGN\\\""), "quotes must be escaped");
        assert!(json.contains("\"epochs\": 6"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the offline env).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn cli_rejects_unknown_flags() {
        // The historical failure mode: a typo silently ran the defaults.
        let err = Cli::parse_from(&argv(&["--episode", "500"]), 60, 3).unwrap_err();
        assert_eq!(err, CliError::UnknownFlag("--episode".to_string()));
        assert!(err.to_string().contains("--episode"));
    }

    #[test]
    fn cli_rejects_malformed_and_missing_values() {
        let err = Cli::parse_from(&argv(&["--episodes", "many"]), 60, 3).unwrap_err();
        assert_eq!(
            err,
            CliError::InvalidValue {
                flag: "--episodes",
                value: "many".to_string()
            }
        );
        let err = Cli::parse_from(&argv(&["--seed"]), 60, 3).unwrap_err();
        assert_eq!(err, CliError::MissingValue("--seed"));
        let err = Cli::parse_from(&argv(&["--instances", "-4"]), 60, 3).unwrap_err();
        assert!(matches!(err, CliError::InvalidValue { .. }));
    }

    #[test]
    fn cli_reports_help() {
        for flag in ["--help", "-h"] {
            let err = Cli::parse_from(&argv(&[flag]), 60, 3).unwrap_err();
            assert_eq!(err, CliError::HelpRequested);
        }
    }

    #[test]
    fn model_build_covers_all_specs() {
        let presets = Presets::quick();
        for spec in ModelSpec::comparison_lineup() {
            let mut m = Model::build(spec, &presets, 3);
            assert_eq!(m.dispatcher().name(), spec.name());
            m.set_prediction(Some(presets.train_prediction(2)));
            m.set_training(false);
        }
    }

    #[test]
    fn insertion_fixture_has_requested_route_length() {
        for orders_on_route in [0usize, 4, 8] {
            let (instance, view) = insertion_fixture(orders_on_route);
            assert_eq!(view.route.len(), 2 * orders_on_route);
            assert_eq!(instance.num_orders(), orders_on_route + 1);
            // The probe order is not on the route.
            let probe = instance.orders().last().unwrap();
            assert!(view
                .route
                .stops()
                .iter()
                .all(|s| s.action.order() != probe.id));
        }
    }
}
