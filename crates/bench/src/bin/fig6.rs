//! **Fig. 6** regenerator: NUV and TC comparison of DQN / AC / DGN /
//! ST-DDGN / Baselines 1–3 on large-scale instances (50 vehicles, 150
//! orders).
//!
//! Observer-based: every evaluation episode streams its counts (epochs,
//! decisions, per-reason rejection breakdown) through `dpdp-core`'s
//! [`dpdp_core::experiment::EvalProbe`] in one pass, with the
//! simulator's per-order and per-vehicle logs switched off — no post-hoc
//! `EpisodeResult` scraping.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig6 [--quick] [--episodes N] [--instances N]
//! ```

use dpdp_bench::{build_and_train, write_artifact, Cli, Model};
use dpdp_core::experiment::mean_row;
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;

fn main() {
    let cli = Cli::parse(120, 3);
    let presets = cli.presets();
    let train_instance = presets.large_instance(cli.seed);
    let eval_instances: Vec<Instance> = (0..cli.instances)
        .map(|i| presets.large_test_instance(cli.seed + 1000 + i as u64))
        .collect();

    println!(
        "Fig. 6: large-scale comparison (50 vehicles, 150 orders; {} eval instances, {} training episodes)",
        eval_instances.len(),
        cli.episodes
    );

    let mut all_rows = Vec::new();
    for spec in ModelSpec::comparison_lineup() {
        let mut model: Model =
            build_and_train(spec, &presets, &train_instance, cli.episodes, cli.seed);
        let rows = evaluate_many_threads(model.dispatcher(), &eval_instances, cli.threads);
        if let Some(mean) = mean_row(&rows) {
            println!(
                "  {:<10} NUV {:>5}  TC {:>10.1}  TTL {:>8.1} km  served {:>4}  \
                 rejected {:>3} (no-feasible {}, policy {}, commit {}, horizon {})",
                mean.algo,
                mean.nuv,
                mean.total_cost,
                mean.ttl,
                mean.served,
                mean.rejected,
                mean.rejections.no_feasible_vehicle,
                mean.rejections.policy_rejected,
                mean.rejections.infeasible_choice,
                mean.rejections.horizon_exceeded,
            );
            all_rows.push(mean);
        }
        all_rows.extend(rows);
    }

    println!("\n{}", report::render_table("Fig. 6 (all rows)", &all_rows));
    if let Some(path) = write_artifact("fig6.csv", &report::rows_to_csv(&all_rows)) {
        println!("wrote {}", path.display());
    }
    println!(
        "Expected shape (paper): Baseline 3 uses the fewest vehicles but a high TC; \
         Baseline 2 exhausts the fleet; graph DRL (DGN, ST-DDGN) beats all baselines \
         on TC, with ST-DDGN best."
    );
}
