//! **Fig. 7** regenerator: NUV and TC across the 20 held-out "industry-
//! scale" test days (150 vehicles, full daily order stream).
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig7 [--quick] [--episodes N] [--instances DAYS]
//! ```

use dpdp_bench::{build_and_train, write_artifact, Cli, Model};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;

fn main() {
    let cli = Cli::parse(80, 20);
    let presets = cli.presets();
    // Train learned models on one train-pool day at industry scale.
    let train_instance = presets.large_instance(cli.seed);
    let days = cli.instances.min(20);

    println!(
        "Fig. 7: industry-scale comparison over {days} test days ({} training episodes)",
        cli.episodes
    );

    let specs = ModelSpec::comparison_lineup();
    let mut models: Vec<(ModelSpec, Model)> = specs
        .iter()
        .map(|&spec| {
            (
                spec,
                build_and_train(spec, &presets, &train_instance, cli.episodes, cli.seed),
            )
        })
        .collect();

    // One scoring pool for every evaluation episode (workers outlive runs).
    let pool = std::sync::Arc::new(dpdp_pool::ThreadPool::new(cli.threads));
    let mut csv = String::from("day,algo,nuv,tc,ttl,served,rejected\n");
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); specs.len()]; // (nuv, tc)
    for day in 0..days as u64 {
        let instance = presets.industry_instance(day);
        print!("Day {:>2} ({} orders):", day + 1, instance.num_orders());
        for (i, (spec, model)) in models.iter_mut().enumerate() {
            model.set_prediction(Some(presets.test_prediction(day, 4)));
            let row = evaluate_pooled(model.dispatcher(), &instance, &pool);
            print!("  {}={}|{:.0}", spec.name(), row.nuv, row.total_cost);
            sums[i].0 += row.nuv as f64;
            sums[i].1 += row.total_cost;
            csv.push_str(&format!(
                "{},{},{},{:.3},{:.3},{},{}\n",
                day + 1,
                row.algo,
                row.nuv,
                row.total_cost,
                row.ttl,
                row.served,
                row.rejected
            ));
        }
        println!();
    }

    println!("\nAverages over {days} days (NUV | TC):");
    for (i, spec) in specs.iter().enumerate() {
        println!(
            "  {:<10} {:>7.2} | {:>10.1}",
            spec.name(),
            sums[i].0 / days as f64,
            sums[i].1 / days as f64
        );
    }
    if let Some(path) = write_artifact("fig7.csv", &csv) {
        println!("wrote {}", path.display());
    }
    println!(
        "Expected shape (paper): DRL methods use fewer vehicles than Baseline 1 \
         (84.1 vs 91.8 on average there); ST-DDGN achieves the lowest TC on most days \
         (33.2k vs 36.8k for Baseline 1); Baseline 2 runs out the whole fleet."
    );
}
