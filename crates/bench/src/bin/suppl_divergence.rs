//! **Supplementary** regenerator: JS vs symmetric-KL divergence inside the
//! ST Score (the paper reports JS performing slightly better).
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin suppl_divergence [--quick] [--episodes N] [--instances N]
//! ```

use dpdp_bench::{write_artifact, Cli};
use dpdp_core::experiment::mean_row;
use dpdp_core::prelude::*;
use dpdp_data::DivergenceKind;
use dpdp_rl::{AgentConfig, DqnAgent, ModelKind, TrainerConfig};

fn main() {
    let cli = Cli::parse(120, 3);
    let presets = cli.presets();
    let ds = presets.dataset();
    let train_instance = presets.large_instance(cli.seed);
    let eval_instances: Vec<Instance> = (0..cli.instances)
        .map(|i| presets.large_test_instance(cli.seed + 500 + i as u64))
        .collect();

    println!(
        "Supplementary: ST-DDGN with JS vs symmetric-KL ST Score ({} episodes, {} eval instances)",
        cli.episodes,
        eval_instances.len()
    );

    let mut rows = Vec::new();
    for (label, kind) in [
        ("ST-DDGN(JS)", DivergenceKind::JensenShannon),
        ("ST-DDGN(sKL)", DivergenceKind::SymmetricKl),
    ] {
        let mut cfg = AgentConfig::new(ModelKind::StDdgn);
        cfg.seed = cli.seed;
        let scorer = StScorer::with_divergence(ds.grid(), ds.factory_index(), kind);
        let mut agent = DqnAgent::new(cfg, ds.grid().num_intervals(), Some(scorer));
        agent.set_prediction(Some(presets.train_prediction(4)));
        train(
            &mut agent,
            &train_instance,
            &TrainerConfig::new(cli.episodes),
        );
        agent.set_training(false);
        let eval_rows = evaluate_many_threads(&mut agent, &eval_instances, cli.threads);
        if let Some(mut mean) = mean_row(&eval_rows) {
            mean.algo = label.to_string();
            println!(
                "  {:<14} NUV {:>5}  TC {:>10.1}  TTL {:>8.1} km",
                mean.algo, mean.nuv, mean.total_cost, mean.ttl
            );
            rows.push(mean);
        }
    }
    if let Some(path) = write_artifact("suppl_divergence.csv", &report::rows_to_csv(&rows)) {
        println!("wrote {}", path.display());
    }
    println!("Expected shape (paper's supplementary): the two are close, with JS slightly better.");
}
