//! **Section IV-D** regenerator: immediate service vs fixed-interval
//! buffering — total cost vs response time (the paper measured ~154 s mean
//! response under buffering for little cost benefit, and kept immediate
//! service).
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin suppl_buffering [--quick] [--instances N]
//! ```

use dpdp_bench::{write_artifact, Cli};
use dpdp_core::prelude::*;
use dpdp_net::TimeDelta;
use dpdp_sim::BufferingMode;

fn main() {
    let cli = Cli::parse(0, 3);
    let presets = cli.presets();
    let instances: Vec<Instance> = (0..cli.instances)
        .map(|i| presets.large_test_instance(cli.seed + 300 + i as u64))
        .collect();

    let modes = [
        ("immediate", BufferingMode::Immediate),
        (
            "buffer-10min",
            BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)),
        ),
        (
            "buffer-30min",
            BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0)),
        ),
        (
            "buffer-60min",
            BufferingMode::FixedInterval(TimeDelta::from_minutes(60.0)),
        ),
    ];

    println!(
        "Section IV-D: buffering strategies under Baseline 1 ({} instances)",
        instances.len()
    );
    println!(
        "{:<14} {:>6} {:>12} {:>10} {:>14}",
        "mode", "NUV", "TC", "served", "response(s)"
    );
    // One scoring pool shared by every simulator below.
    let pool = std::sync::Arc::new(dpdp_pool::ThreadPool::new(cli.threads));
    let mut csv = String::from("mode,nuv,tc,served,rejected,avg_response_secs\n");
    for (label, mode) in modes {
        let mut nuv = 0.0;
        let mut tc = 0.0;
        let mut served = 0;
        let mut rejected = 0;
        let mut resp = 0.0;
        for inst in &instances {
            let sim = Simulator::builder(inst)
                .buffering(mode)
                .thread_pool(std::sync::Arc::clone(&pool))
                .build()
                .expect("positive buffering periods");
            let mut b1 = Baseline1;
            let r = sim.run(&mut b1);
            nuv += r.metrics.nuv as f64;
            tc += r.metrics.total_cost;
            served += r.metrics.served;
            rejected += r.metrics.rejected;
            resp += r.metrics.avg_response_secs;
        }
        let n = instances.len() as f64;
        println!(
            "{:<14} {:>6.1} {:>12.1} {:>10} {:>14.1}",
            label,
            nuv / n,
            tc / n,
            served,
            resp / n
        );
        csv.push_str(&format!(
            "{label},{:.2},{:.3},{served},{rejected},{:.2}\n",
            nuv / n,
            tc / n,
            resp / n
        ));
    }
    if let Some(path) = write_artifact("suppl_buffering.csv", &csv) {
        println!("wrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): buffering barely reduces cost (it can even lose \
         orders to expired deadlines) while response time grows with the buffer; \
         immediate service is the right operating point for a 60 s SLA."
    );
}
