//! **Fig. 9 + Fig. 10** regenerator: the spatial-temporal *capacity*
//! distribution across training episodes for DQN / AC / DGN / ST-DDGN, its
//! Frobenius `Diff` to the demand distribution, and the demand STD matrix of
//! the large-scale instance itself (Fig. 10).
//!
//! Rides the observer-based experiment pipeline: `Diff` points stream
//! through a [`TrainObserver`] into the console and the summary CSV as
//! training runs, and each kept capacity snapshot is written to disk the
//! moment it is recorded — no `TrainReport` is materialized or scraped.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig9 [--quick] [--episodes N]
//! ```

use dpdp_bench::{write_artifact, Cli, Model};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_rl::{EpisodePoint, TrainerConfig};

/// Streams `Diff` points (thinned to `stride`) and writes each kept
/// capacity snapshot as soon as it lands.
struct DiffStream {
    name: String,
    stride: usize,
    summary: String,
    first_diff: Option<f64>,
    last_point: Option<(usize, f64)>,
}

impl DiffStream {
    fn emit(&mut self, episode: usize, diff: f64) {
        println!("  ep {:>4}: Diff {:>9.2}", episode, diff);
        self.summary
            .push_str(&format!("{},{},{:.3}\n", self.name, episode, diff));
    }

    /// The thinned stream always ends with the final episode's point,
    /// like the batch `thin_curve` rendering did.
    fn finish(&mut self) {
        if let Some((episode, diff)) = self.last_point {
            if !episode.is_multiple_of(self.stride) {
                self.emit(episode, diff);
            }
        }
    }
}

impl TrainObserver for DiffStream {
    fn on_episode(&mut self, p: &EpisodePoint) {
        let Some(d) = p.capacity_diff else { return };
        if self.first_diff.is_none() {
            self.first_diff = Some(d);
        }
        self.last_point = Some((p.episode, d));
        if p.episode.is_multiple_of(self.stride) {
            self.emit(p.episode, d);
        }
    }

    fn on_capacity_snapshot(&mut self, episode: usize, matrix: &StdMatrix) {
        write_artifact(
            &format!(
                "fig9_{}_ep{}.csv",
                self.name.to_lowercase().replace('-', "_"),
                episode
            ),
            &matrix.to_csv(),
        );
    }
}

fn main() {
    let cli = Cli::parse(150, 1);
    let presets = cli.presets();
    let instance = presets.large_instance(cli.seed);
    let index = presets.dataset().factory_index();

    // Fig. 10: the demand STD of this instance.
    let demand = StdMatrix::from_orders(instance.orders(), &instance.grid, &index);
    write_artifact("fig10_demand.csv", &demand.to_csv());
    println!(
        "Fig. 10: demand STD of the large-scale instance written (total {:.1}, {} factories x {} intervals)",
        demand.total(),
        demand.num_factories(),
        demand.num_intervals()
    );

    let snapshots = vec![0, cli.episodes / 3, 2 * cli.episodes / 3];
    let specs = [
        ModelSpec::Dqn(dpdp_rl::ModelKind::Dqn),
        ModelSpec::ActorCritic,
        ModelSpec::Dqn(dpdp_rl::ModelKind::Dgn),
        ModelSpec::Dqn(dpdp_rl::ModelKind::StDdgn),
    ];
    println!(
        "\nFig. 9: capacity-vs-demand Diff across {} training episodes",
        cli.episodes
    );
    let mut summary = String::from("algo,episode,diff\n");
    for spec in specs {
        let mut model = Model::build(spec, &presets, cli.seed);
        model.set_prediction(Some(presets.train_prediction(4)));
        let mut cfg = TrainerConfig::new(cli.episodes);
        cfg.capacity_index = Some(index.clone());
        cfg.snapshot_episodes = snapshots.clone();
        println!("\n{} Diff trajectory:", spec.name());
        let mut stream = DiffStream {
            name: spec.name().to_string(),
            stride: (cli.episodes / 8).max(1),
            summary: String::new(),
            first_diff: None,
            last_point: None,
        };
        model.train_on_observed(&instance, cli.episodes, Some(cfg), &mut stream);
        stream.finish();
        summary.push_str(&stream.summary);
        if let (Some(f), Some(l)) = (stream.first_diff, stream.last_point.map(|(_, d)| d)) {
            println!(
                "  Diff: {:.2} -> {:.2} ({})",
                f,
                l,
                if l < f { "decreased" } else { "increased" }
            );
        }
    }
    write_artifact("fig9_diff.csv", &summary);
    println!(
        "\nExpected shape (paper): Diff decreases as each policy converges; \
         ST-DDGN reaches the smallest final Diff and drops fastest — its capacity \
         distribution tracks the demand hot spots most closely."
    );
    println!("wrote fig9_*.csv and fig10_demand.csv under target/experiments/");
}
