//! **Fig. 9 + Fig. 10** regenerator: the spatial-temporal *capacity*
//! distribution across training episodes for DQN / AC / DGN / ST-DDGN, its
//! Frobenius `Diff` to the demand distribution, and the demand STD matrix of
//! the large-scale instance itself (Fig. 10).
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig9 [--quick] [--episodes N]
//! ```

use dpdp_bench::{write_artifact, Cli, Model};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_rl::TrainerConfig;

fn main() {
    let cli = Cli::parse(150, 1);
    let presets = cli.presets();
    let instance = presets.large_instance(cli.seed);
    let index = presets.dataset().factory_index();

    // Fig. 10: the demand STD of this instance.
    let demand = StdMatrix::from_orders(instance.orders(), &instance.grid, &index);
    write_artifact("fig10_demand.csv", &demand.to_csv());
    println!(
        "Fig. 10: demand STD of the large-scale instance written (total {:.1}, {} factories x {} intervals)",
        demand.total(),
        demand.num_factories(),
        demand.num_intervals()
    );

    let snapshots = vec![0, cli.episodes / 3, 2 * cli.episodes / 3];
    let specs = [
        ModelSpec::Dqn(dpdp_rl::ModelKind::Dqn),
        ModelSpec::ActorCritic,
        ModelSpec::Dqn(dpdp_rl::ModelKind::Dgn),
        ModelSpec::Dqn(dpdp_rl::ModelKind::StDdgn),
    ];
    println!(
        "\nFig. 9: capacity-vs-demand Diff across {} training episodes",
        cli.episodes
    );
    let mut summary = String::from("algo,episode,diff\n");
    for spec in specs {
        let mut model = Model::build(spec, &presets, cli.seed);
        model.set_prediction(Some(presets.train_prediction(4)));
        let mut cfg = TrainerConfig::new(cli.episodes);
        cfg.capacity_index = Some(index.clone());
        cfg.snapshot_episodes = snapshots.clone();
        let report = model.train_on(&instance, cli.episodes, Some(cfg));
        println!("\n{} Diff trajectory:", spec.name());
        let stride = (cli.episodes / 8).max(1);
        for p in report::thin_curve(&report.points, stride) {
            if let Some(d) = p.capacity_diff {
                println!("  ep {:>4}: Diff {:>9.2}", p.episode, d);
                summary.push_str(&format!("{},{},{:.3}\n", spec.name(), p.episode, d));
            }
        }
        for (ep, m) in &report.capacity_matrices {
            write_artifact(
                &format!(
                    "fig9_{}_ep{}.csv",
                    spec.name().to_lowercase().replace('-', "_"),
                    ep
                ),
                &m.to_csv(),
            );
        }
        let first = report.points.first().and_then(|p| p.capacity_diff);
        let last = report.points.last().and_then(|p| p.capacity_diff);
        if let (Some(f), Some(l)) = (first, last) {
            println!(
                "  Diff: {:.2} -> {:.2} ({})",
                f,
                l,
                if l < f { "decreased" } else { "increased" }
            );
        }
    }
    write_artifact("fig9_diff.csv", &summary);
    println!(
        "\nExpected shape (paper): Diff decreases as each policy converges; \
         ST-DDGN reaches the smallest final Diff and drops fastest — its capacity \
         distribution tracks the demand hot spots most closely."
    );
    println!("wrote fig9_*.csv and fig10_demand.csv under target/experiments/");
}
