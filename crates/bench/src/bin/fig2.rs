//! **Fig. 2** regenerator: the spatial-temporal distribution of delivery
//! demand over four days of the same month (27 factories × 144 intervals).
//!
//! Observer-based: each day's STD matrix is **streamed** by a
//! [`DemandRecorder`] riding a one-pass simulation of that day (per-order
//! logs switched off), instead of being scraped post-hoc from the raw
//! order table. Under the immediate-service episodes used here the
//! streamed matrix is bit-identical to `StdMatrix::from_orders` (asserted
//! in `dpdp-core`'s probe tests), so the printed summaries and CSV
//! heat-map artifacts are unchanged — but they now come from the same
//! decision stream a live serving loop would emit.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig2 [--quick]
//! ```

use dpdp_bench::{write_artifact, Cli};
use dpdp_core::prelude::*;
use dpdp_data::StdMatrix;
use dpdp_sim::{FirstFeasible, MetricsOptions, Simulator};

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Streams one day's demand matrix out of a single simulated pass.
fn streamed_std(presets: &Presets, day: u64) -> StdMatrix {
    let ds = presets.dataset();
    // Demand is a property of the order stream, not the fleet — a small
    // fleet keeps the one-pass replay cheap.
    let instance = ds.day_instance(day, 8);
    let mut recorder = DemandRecorder::new(ds.factory_index(), ds.grid().num_intervals());
    Simulator::builder(&instance)
        .metrics(MetricsOptions {
            record_assignments: false,
            record_vehicle_stats: false,
        })
        .build()
        .expect("immediate service never fails to build")
        .run_observed(&mut FirstFeasible, &mut [&mut recorder]);
    recorder.into_matrix()
}

fn main() {
    let cli = Cli::parse(0, 0);
    let presets = cli.presets();
    // Four consecutive days "from the same month".
    let days = [10u64, 11, 12, 13];
    let mats: Vec<StdMatrix> = days.iter().map(|&d| streamed_std(&presets, d)).collect();

    println!("Fig. 2: spatial-temporal distribution of delivery demand, 4 days");
    println!("(streamed per day by a DemandRecorder observer in one simulated pass)");
    for (i, m) in mats.iter().enumerate() {
        let rows = m.row_sums();
        let mut hot: Vec<(usize, f64)> = rows.iter().cloned().enumerate().collect();
        hot.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top: Vec<String> = hot
            .iter()
            .take(5)
            .map(|(f, q)| format!("F{f}({q:.0})"))
            .collect();
        // Peak-hour share: intervals 60..72 (10-12h) and 84..102 (14-17h).
        let cols = m.col_sums();
        let peak: f64 = cols[60..72].iter().chain(&cols[84..102]).sum();
        println!(
            "day {:>2}: total demand {:>8.1}, peak-hour share {:>5.1}%, hottest factories: {}",
            days[i],
            m.total(),
            100.0 * peak / m.total().max(1e-9),
            top.join(" ")
        );
        write_artifact(&format!("fig2_day{}.csv", days[i]), &m.to_csv());
    }

    println!("\nDay-to-day similarity of factory demand profiles (cosine of row sums):");
    for i in 0..mats.len() {
        for j in i + 1..mats.len() {
            let sim = cosine(&mats[i].row_sums(), &mats[j].row_sums());
            println!("  day {} vs day {}: {:.4}", days[i], days[j], sim);
        }
    }
    println!(
        "\nExpected shape (paper): high similarity between all four days \
         (recurring pattern), strongest for adjacent days; a few hot factories \
         dominate; demand concentrates in the 10-12 a.m. and 2-5 p.m. peaks."
    );
    println!("wrote fig2_day*.csv under target/experiments/");
}
