//! **Table I** regenerator: DRL methods vs the exact optimum on tiny
//! instances (5 vehicles; 6, 7, 8, 10 orders): NUV, TC and wall time.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin table1 [--quick] [--episodes N]
//! ```

use dpdp_bench::{build_and_train, write_artifact, Cli};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_rl::ModelKind;
use std::time::{Duration, Instant};

fn main() {
    let cli = Cli::parse(60, 1);
    let presets = cli.presets();
    let sizes = [6usize, 7, 8, 10];
    let specs = [
        ModelSpec::Dqn(ModelKind::Dqn),
        ModelSpec::ActorCritic,
        ModelSpec::Dqn(ModelKind::Dgn),
        ModelSpec::Dqn(ModelKind::StDdgn),
    ];
    // The paper's Gurobi runs took 300 s (6 orders) and 2818 s (7 orders)
    // and were intractable beyond; we cap our branch-and-bound likewise.
    let exact_budget = Duration::from_secs(30);

    let mut csv = String::from("orders,algo,nuv,tc,wall_secs,optimal\n");
    println!("Table I: DRL vs exact optimum on tiny instances");
    for &n in &sizes {
        let instance = presets.tiny_instance(n, cli.seed);
        println!("\n== {n} orders, 5 vehicles ==");
        println!(
            "{:<10} {:>5} {:>12} {:>12} {:>10}",
            "algo", "NUV", "TC", "wall(s)", "note"
        );
        for &spec in &specs {
            let mut model = build_and_train(spec, &presets, &instance, cli.episodes, cli.seed);
            let row = evaluate(model.dispatcher(), &instance);
            println!(
                "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                row.algo, row.nuv, row.total_cost, row.wall_secs, ""
            );
            csv.push_str(&format!(
                "{n},{},{},{:.3},{:.6},\n",
                row.algo, row.nuv, row.total_cost, row.wall_secs
            ));
        }
        let start = Instant::now();
        let solver = ExactSolver::with_time_limit(exact_budget);
        match solver.solve(&instance) {
            Some(sol) => {
                let wall = start.elapsed().as_secs_f64();
                let note = if sol.optimal { "optimal" } else { "timeout" };
                println!(
                    "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                    "EXACT", sol.nuv, sol.total_cost, wall, note
                );
                csv.push_str(&format!(
                    "{n},EXACT,{},{:.3},{:.6},{}\n",
                    sol.nuv, sol.total_cost, wall, sol.optimal
                ));
            }
            None => {
                println!(
                    "{:<10} {:>5} {:>12} {:>12} {:>10}",
                    "EXACT", "-", "-", "-", "infeasible"
                );
                csv.push_str(&format!("{n},EXACT,,,,false\n"));
            }
        }
    }
    if let Some(path) = write_artifact("table1.csv", &csv) {
        println!("\nwrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): graph models (DGN/ST-DDGN) match or beat DQN/AC; \
         exact achieves the lowest TC but orders of magnitude more wall time, \
         becoming intractable as orders grow."
    );
}
