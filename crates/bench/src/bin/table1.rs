//! **Table I** regenerator: DRL methods vs the exact optimum on tiny
//! instances (5 vehicles; 6, 7, 8, 10 orders): NUV, TC and wall time.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin table1 \
//!     [--quick] [--episodes N] [--threads N]
//! ```
//!
//! Besides the printed table and `table1.csv`, the run is archived as
//! machine-readable `target/experiments/BENCH_table1.json` (wall time per
//! policy, thread count, epoch counts, plus `sweep_n8`/`sweep_n16` rows
//! timing the naive vs incremental Algorithm 2 insertion sweep,
//! `metro_sweep_k*` rows timing the metro-scale `B x K` decision-epoch
//! sweep for the shipped SoA cached evaluator against the AoS reference
//! layout and the naive baseline, plus `metro_k*` rows timing
//! region-sharded dispatch at every `--shards` count) so the perf
//! trajectory across PRs is recorded; the header also
//! carries the `--scenario` name and, for `metro_disrupted`, the
//! disruption seed, so rows stay comparable across scenarios. Under
//! `--scenario metro_disrupted` a disrupted smoke episode rides along
//! (gates: finite metrics, ≥ 1% cancellations, ≥ 1 breakdown, and every
//! stranded order re-dispatched or accounted for in the rejection
//! breakdown). Under `--scenario megacity` the regular lineup is skipped
//! entirely and the run times one 10 000-vehicle `Presets::megacity`
//! episode flat (`shards=1`) vs hierarchically sharded
//! (`ShardConfig::hierarchical` + demand-fed re-partitioning), asserting
//! the episodes bit-identical — across the two layouts *and* across
//! thread counts — and exiting 1 unless the hierarchical run is ≥ 5×
//! faster. The CI bench-smoke job uploads the JSON and fails on any
//! panic, any non-finite metric, an incremental sweep slower than the
//! naive reference at n >= 8 stops, a metro `B x K` cached sweep under 3×
//! the naive baseline or more than 10% behind the AoS reference layout,
//! a `shards=4` metro episode slower than `shards=1`, or a megacity ratio
//! under 5×.

use dpdp_bench::{
    bench_json, build_and_train, check_finite, insertion_fixture, insertion_fixture_with_probes,
    write_artifact, BenchRecord, Cli, Scenario,
};
use dpdp_core::experiment::evaluate_pooled;
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_net::TimeDelta;
use dpdp_rl::ModelKind;
use dpdp_routing::{
    sweep_best, sweep_best_aos, AosScheduleCache, PlannerMode, RoutePlanner, ScheduleCache,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Best-of-`reps` wall time (seconds) of one call to `f`, each sample
/// averaging `inner` back-to-back calls to defeat timer granularity.
fn best_wall_secs(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

/// Times the Algorithm 2 insertion sweep — naive reference vs incremental
/// evaluator — on the loose ring fixture at route lengths n = 8 and 16
/// stops, appending one archived record per (n, evaluator).
///
/// This is the CI perf gate for the O(n³) -> O(n²) rewrite: the run exits
/// with status 1 if the incremental path is slower than the naive path at
/// any n >= 8 (the measured gap is several-fold, so a genuine regression —
/// not timer noise — is required to trip it).
fn sweep_walltime(records: &mut Vec<BenchRecord>) {
    println!("\n== insertion sweep: naive vs incremental ==");
    println!("{:<10} {:>24} {:>14}", "stops", "algo", "wall(us)");
    for &orders_on_route in &[4usize, 8] {
        let (instance, view) = insertion_fixture(orders_on_route);
        let probe = instance.orders().last().expect("fixture has orders");
        let n = 2 * orders_on_route;
        let incremental = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
        let naive = RoutePlanner::with_mode(
            &instance.network,
            &instance.fleet,
            instance.orders(),
            PlannerMode::Naive,
        );
        let wall_incremental = best_wall_secs(30, 20, || {
            std::hint::black_box(incremental.plan(&view, probe));
        });
        let wall_naive = best_wall_secs(30, 20, || {
            std::hint::black_box(naive.plan(&view, probe));
        });
        for (algo, wall) in [
            ("insertion_naive", wall_naive),
            ("insertion_incremental", wall_incremental),
        ] {
            let record = BenchRecord {
                instance: format!("sweep_n{n}"),
                algo: algo.to_string(),
                nuv: 0,
                total_cost: 0.0,
                wall_secs: wall,
                epochs: 0,
            };
            check_finite(&record);
            println!("{:<10} {:>24} {:>14.3}", n, algo, wall * 1e6);
            records.push(record);
        }
        if n >= 8 && wall_incremental > wall_naive {
            eprintln!(
                "error: incremental insertion sweep slower than naive at \
                 n = {n} stops ({:.3} us vs {:.3} us)",
                wall_incremental * 1e6,
                wall_naive * 1e6
            );
            std::process::exit(1);
        }
    }
}

/// The metro-scale `B × K` sweep ratchet: the decision-epoch hot path —
/// `K` per-vehicle schedule caches rebuilt arena-style, each swept by `B`
/// distinct probe orders — timed for the shipped SoA cached evaluator
/// ([`ScheduleCache::rebuild`] + [`sweep_best`]), the retained AoS
/// reference layout (build + sweep, the same shape), and the naive
/// Algorithm 2 baseline that re-simulates every candidate (whose one
/// winner materialization per probe is noise next to its enumeration).
///
/// Two gates, either failure exits 1, so CI ratchets the hot path:
/// * the shipped cached sweep must be at least
///   [`METRO_SWEEP_MIN_SPEEDUP`]× faster than the naive baseline on the
///   full `B × K` workload (the pre-cache per-epoch cost this repo started
///   from — regressions that eat the incremental win trip this first);
/// * it must also stay within [`METRO_SWEEP_AOS_BAND`]× of the AoS
///   reference sweep, so the SoA layout can never quietly regress behind
///   the very reference it is parity-tested against (the band absorbs
///   shared-runner timing noise; the measured margin is the SoA path
///   *ahead* by ~10–15%).
///
/// All three walls are archived in `BENCH_table1.json` as
/// `metro_sweep_k{K}_b{B}` rows for cross-PR trajectory tracking.
fn metro_sweep_walltime(records: &mut Vec<BenchRecord>, cli: &Cli) {
    const B: usize = 10;
    const ORDERS_ON_ROUTE: usize = 8; // 16-stop base routes
    const REPS: usize = 5;
    const METRO_SWEEP_MIN_SPEEDUP: f64 = 3.0;
    const METRO_SWEEP_AOS_BAND: f64 = 1.10;
    let k = if cli.quick { 32 } else { 256 };
    println!("\n== metro B x K sweep: {k} caches x {B} probes, 16-stop routes ==");
    let (instance, view) = insertion_fixture_with_probes(ORDERS_ON_ROUTE, B);
    let net = &instance.network;
    let fleet = &instance.fleet;
    let orders = instance.orders();
    let probes: Vec<_> = orders.iter().rev().take(B).collect();
    let naive = RoutePlanner::with_mode(net, fleet, orders, PlannerMode::Naive);
    let mut soa = ScheduleCache::default();
    let (mut wall_naive, mut wall_aos, mut wall_soa) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        // Interleaved reps so machine-load drift cannot bias one evaluator.
        wall_naive = wall_naive.min(best_wall_secs(1, 1, || {
            for _ in 0..k {
                for probe in &probes {
                    std::hint::black_box(naive.plan(&view, probe));
                }
            }
        }));
        wall_aos = wall_aos.min(best_wall_secs(1, 1, || {
            for _ in 0..k {
                let cache = AosScheduleCache::build(&view, net, fleet, orders);
                for probe in &probes {
                    std::hint::black_box(sweep_best_aos(&cache, &view, probe, net, fleet, orders));
                }
            }
        }));
        wall_soa = wall_soa.min(best_wall_secs(1, 1, || {
            for _ in 0..k {
                soa.rebuild(&view, net, fleet, orders);
                for probe in &probes {
                    std::hint::black_box(sweep_best(&soa, &view, probe, net, fleet, orders));
                }
            }
        }));
    }
    println!("{:<24} {:>14}", "algo", "wall(ms)");
    for (algo, wall) in [
        ("insertion_naive", wall_naive),
        ("aos_cached_sweep", wall_aos),
        ("soa_cached_sweep", wall_soa),
    ] {
        let record = BenchRecord {
            instance: format!("metro_sweep_k{k}_b{B}"),
            algo: algo.to_string(),
            nuv: 0,
            total_cost: 0.0,
            wall_secs: wall,
            epochs: 0,
        };
        check_finite(&record);
        println!("{:<24} {:>14.3}", algo, wall * 1e3);
        records.push(record);
    }
    let speedup = wall_naive / wall_soa;
    println!(
        "speedup vs naive: {speedup:.2}x (gate: >= {METRO_SWEEP_MIN_SPEEDUP:.0}x)   \
         vs AoS reference: {:.2}x (gate: <= {METRO_SWEEP_AOS_BAND:.2}x of AoS)",
        wall_aos / wall_soa
    );
    if !speedup.is_finite() || speedup < METRO_SWEEP_MIN_SPEEDUP {
        eprintln!(
            "error: metro B x K cached sweep below the \
             {METRO_SWEEP_MIN_SPEEDUP:.0}x ratchet vs the naive Algorithm 2 \
             baseline ({:.3} ms naive vs {:.3} ms cached, {speedup:.2}x)",
            wall_naive * 1e3,
            wall_soa * 1e3
        );
        std::process::exit(1);
    }
    if wall_soa > wall_aos * METRO_SWEEP_AOS_BAND {
        eprintln!(
            "error: SoA cached sweep regressed behind the AoS reference layout \
             on the metro B x K workload ({:.3} ms SoA vs {:.3} ms AoS, \
             band {METRO_SWEEP_AOS_BAND:.2}x)",
            wall_soa * 1e3,
            wall_aos * 1e3
        );
        std::process::exit(1);
    }
}

/// Region-sharded dispatch on the metro preset: one Baseline-1 episode per
/// `--shards` count (industry-scale fleet of 256 ≥ the gate's 32-vehicle
/// floor, 10-minute buffered epochs so the `B x K` sweep dominates),
/// interleaved best-of-`reps` to defeat load drift, metrics asserted
/// bit-identical across shard counts, wall times archived.
///
/// This is the CI perf gate for the partition → score → merge pipeline:
/// the run exits with status 1 if metrics diverge between shard counts, or
/// if `shards=4` is slower than `shards=1` (when both were requested).
fn metro_shard_walltime(
    records: &mut Vec<BenchRecord>,
    cli: &Cli,
    pool: &Arc<dpdp_pool::ThreadPool>,
) {
    const FLEET: usize = 256;
    const ORDERS: usize = 1600;
    const REPS: usize = 5;
    println!("\n== region-sharded dispatch: metro preset, {FLEET} vehicles ==");
    println!(
        "{:<14} {:>8} {:>12} {:>14}",
        "shards", "NUV", "TC", "wall(ms)"
    );
    let metro = Presets::metro(cli.seed);
    let instance = metro.metro_instance(ORDERS, FLEET, 1);
    let mut walls: Vec<f64> = vec![f64::INFINITY; cli.shards.len()];
    let mut results: Vec<Option<EpisodeResult>> = vec![None; cli.shards.len()];
    for _ in 0..REPS {
        // Interleave the shard counts inside each rep so slow drift in
        // machine load cannot bias one configuration.
        for (slot, &shards) in cli.shards.iter().enumerate() {
            let sim = Simulator::builder(&instance)
                .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
                .sharding(ShardConfig::flat(shards).expect("positive shard count"))
                .thread_pool(Arc::clone(pool))
                .build()
                .expect("valid metro configuration");
            let mut b1 = Baseline1;
            let start = Instant::now();
            let result = sim.run(&mut b1);
            walls[slot] = walls[slot].min(start.elapsed().as_secs_f64());
            match &results[slot] {
                None => results[slot] = Some(result),
                Some(prev) => assert_eq!(
                    *prev, result,
                    "episode diverged across repetitions at {shards} shards"
                ),
            }
        }
    }
    for ((&shards, &wall), result) in cli.shards.iter().zip(&walls).zip(&results) {
        let result = result.as_ref().expect("at least one rep ran");
        if let Some(reference) = &results[0] {
            if *result != *reference {
                eprintln!(
                    "error: metro episode at shards={shards} diverged from shards={}",
                    cli.shards[0]
                );
                std::process::exit(1);
            }
        }
        let record = BenchRecord {
            instance: format!("metro_k{FLEET}_b10"),
            algo: format!("shards{shards}"),
            nuv: result.metrics.nuv,
            total_cost: result.metrics.total_cost,
            wall_secs: wall,
            epochs: 0,
        };
        check_finite(&record);
        println!(
            "{:<14} {:>8} {:>12.1} {:>14.3}",
            format!("shards{shards}"),
            result.metrics.nuv,
            result.metrics.total_cost,
            wall * 1e3
        );
        records.push(record);
    }
    let wall_of = |count: usize| {
        cli.shards
            .iter()
            .position(|&s| s == count)
            .map(|slot| walls[slot])
    };
    if let (Some(w1), Some(w4)) = (wall_of(1), wall_of(4)) {
        if w4 > w1 {
            eprintln!(
                "error: sharded dispatch slower than the flat scan on the metro \
                 preset at {FLEET} vehicles ({:.3} ms at shards=4 vs {:.3} ms at \
                 shards=1)",
                w4 * 1e3,
                w1 * 1e3
            );
            std::process::exit(1);
        }
    }
}

/// The `megacity` scenario: one Baseline-1 episode on the
/// `Presets::megacity` workload — 10 000 vehicles, orders sampled from a
/// ~100k-order generated day, 30-minute buffered epochs so every flush is
/// a genuinely large `B x K` sweep — timed flat (`shards=1`) against the
/// hierarchical two-level `ShardConfig` (64 regions × 2 cells,
/// same-region escalation, demand-fed re-partitioning every 4 flushes).
///
/// Three gates, any failure exits 1:
/// * the hierarchical episode must be **bit-identical** to the flat scan
///   (the sharding determinism contract at industry scale);
/// * the hierarchical episode must also be bit-identical between 1 scoring
///   thread and the `--threads` pool (fixed seed ⇒ same episode across
///   thread counts, re-partitioning included);
/// * hierarchical must be at least `MEGACITY_MIN_SPEEDUP`× faster than
///   flat wall-time (the ROADMAP scale-ceiling gate).
fn megacity_shard_walltime(
    records: &mut Vec<BenchRecord>,
    cli: &Cli,
    pool: &Arc<dpdp_pool::ThreadPool>,
) {
    const FLEET: usize = 10_000;
    const ORDERS: usize = 4_000;
    const REPS: usize = 2;
    const MEGACITY_MIN_SPEEDUP: f64 = 5.0;
    println!("\n== megacity: hierarchical sharding vs flat scan, {FLEET} vehicles ==");
    let megacity = Presets::megacity(cli.seed);
    let instance = megacity.megacity_instance(ORDERS, FLEET, 1);
    let hier = ShardConfig::hierarchical(64, 2)
        .expect("positive region/cell counts")
        .escalation(2)
        .repartition(RepartitionPolicy::periodic(4))
        .expect("positive cadence");
    let configs: [(&str, ShardConfig); 2] = [
        ("flat1", ShardConfig::flat(1).expect("one shard")),
        ("hier64x2", hier.clone()),
    ];
    let buffering = BufferingMode::FixedInterval(TimeDelta::from_minutes(30.0));
    let mut walls = [f64::INFINITY; 2];
    let mut results: [Option<EpisodeResult>; 2] = [None, None];
    for _ in 0..REPS {
        // Interleaved reps: machine-load drift cannot bias one layout.
        for (slot, (label, config)) in configs.iter().enumerate() {
            let sim = Simulator::builder(&instance)
                .buffering(buffering)
                .sharding(config.clone())
                .seed(cli.seed)
                .thread_pool(Arc::clone(pool))
                .build()
                .expect("valid megacity configuration");
            let mut b1 = Baseline1;
            let start = Instant::now();
            let result = sim.run(&mut b1);
            walls[slot] = walls[slot].min(start.elapsed().as_secs_f64());
            match &results[slot] {
                None => results[slot] = Some(result),
                Some(prev) => assert_eq!(
                    *prev, result,
                    "megacity episode diverged across repetitions under {label}"
                ),
            }
        }
    }
    let flat = results[0].take().expect("flat rep ran");
    let sharded = results[1].take().expect("hierarchical rep ran");
    if flat != sharded {
        eprintln!("error: hierarchical megacity episode diverged from the flat scan");
        std::process::exit(1);
    }
    // Thread-count bit-identity of the sharded episode: one serial run
    // against the pooled result (fixed seed ⇒ same episode everywhere).
    let serial = Simulator::builder(&instance)
        .buffering(buffering)
        .sharding(hier)
        .seed(cli.seed)
        .num_threads(1)
        .build()
        .expect("valid serial megacity configuration")
        .run(&mut Baseline1);
    if serial != sharded {
        eprintln!(
            "error: hierarchical megacity episode diverged between 1 and {} scoring threads",
            cli.threads
        );
        std::process::exit(1);
    }
    println!(
        "{:<14} {:>8} {:>12} {:>12}",
        "layout", "NUV", "TC", "wall(s)"
    );
    for ((label, _), (wall, result)) in configs.iter().zip(walls.iter().zip([&flat, &sharded])) {
        let record = BenchRecord {
            instance: format!("megacity_k{FLEET}_b30"),
            algo: label.to_string(),
            nuv: result.metrics.nuv,
            total_cost: result.metrics.total_cost,
            wall_secs: *wall,
            epochs: 0,
        };
        check_finite(&record);
        println!(
            "{:<14} {:>8} {:>12.1} {:>12.3}",
            label, result.metrics.nuv, result.metrics.total_cost, wall
        );
        records.push(record);
    }
    let speedup = walls[0] / walls[1];
    println!("speedup: {speedup:.2}x (gate: >= {MEGACITY_MIN_SPEEDUP:.0}x)");
    if !speedup.is_finite() || speedup < MEGACITY_MIN_SPEEDUP {
        eprintln!(
            "error: hierarchical sharding below the {MEGACITY_MIN_SPEEDUP:.0}x megacity gate: \
             {:.3} s flat vs {:.3} s sharded ({speedup:.2}x)",
            walls[0], walls[1]
        );
        std::process::exit(1);
    }
}

/// The `metro_disrupted` scenario smoke: one Baseline-1 episode on the
/// metro preset with seeded cancellations and breakdowns armed, watched by
/// an [`EvalProbe`]. Exits 1 unless the scenario is non-vacuous — at
/// least 1% of orders cancelled and at least one breakdown — and every
/// order ended in exactly one final state (served, or rejected with a
/// reason), i.e. all stranded orders were re-dispatched or accounted for.
fn disrupted_smoke(records: &mut Vec<BenchRecord>, cli: &Cli, pool: &Arc<dpdp_pool::ThreadPool>) {
    const FLEET: usize = 32;
    const ORDERS: usize = 240;
    println!("\n== disrupted metro scenario: {ORDERS} orders, {FLEET} vehicles ==");
    let (metro, disruptions) = Presets::metro_disrupted(cli.seed);
    let instance = metro.metro_instance(ORDERS, FLEET, 1);
    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::FixedInterval(TimeDelta::from_minutes(10.0)))
        .disruptions(disruptions)
        .seed(cli.seed)
        .thread_pool(Arc::clone(pool))
        .build()
        .expect("valid disrupted metro configuration");
    let mut probe = EvalProbe::default();
    let mut b1 = Baseline1;
    let start = Instant::now();
    let result = sim.run_observed(&mut b1, &mut [&mut probe]);
    let wall = start.elapsed().as_secs_f64();
    let m = &result.metrics;
    let record = BenchRecord {
        instance: format!("disrupted_k{FLEET}_b10"),
        algo: "Baseline1".to_string(),
        nuv: m.nuv,
        total_cost: m.total_cost,
        wall_secs: wall,
        epochs: probe.epochs,
    };
    check_finite(&record);
    println!(
        "NUV {}  TC {:.1}  served {}  cancelled {}  lost {}  breakdowns {}  wall {:.3} s",
        m.nuv,
        m.total_cost,
        m.served,
        m.rejections.cancelled,
        m.rejections.vehicle_lost,
        probe.breakdowns,
        wall
    );
    if m.rejections.cancelled * 100 < instance.num_orders() {
        eprintln!(
            "error: metro_disrupted is vacuous: {} cancellations over {} orders (< 1%)",
            m.rejections.cancelled,
            instance.num_orders()
        );
        std::process::exit(1);
    }
    if probe.breakdowns == 0 {
        eprintln!("error: metro_disrupted produced no breakdown");
        std::process::exit(1);
    }
    if m.served + m.rejections.total() != instance.num_orders() {
        eprintln!(
            "error: disrupted episode lost orders: served {} + rejected-by-reason {} != {}",
            m.served,
            m.rejections.total(),
            instance.num_orders()
        );
        std::process::exit(1);
    }
    records.push(record);
}

fn main() {
    let cli = Cli::parse(60, 1);
    let presets = cli.presets();
    let sizes = [6usize, 7, 8, 10];
    let specs = [
        ModelSpec::Dqn(ModelKind::Dqn),
        ModelSpec::ActorCritic,
        ModelSpec::Dqn(ModelKind::Dgn),
        ModelSpec::Dqn(ModelKind::StDdgn),
    ];
    // The paper's Gurobi runs took 300 s (6 orders) and 2818 s (7 orders)
    // and were intractable beyond; we cap our branch-and-bound likewise —
    // tighter under --quick, which doubles as the CI smoke budget.
    let exact_budget = Duration::from_secs(if cli.quick { 2 } else { 30 });

    // One scoring pool for every evaluation episode (workers outlive runs).
    let pool = std::sync::Arc::new(dpdp_pool::ThreadPool::new(cli.threads));

    // The megacity gate stands alone: a 10k-vehicle flat-scan episode
    // dwarfs the whole Table I lineup, so the scenario runs only the
    // hierarchical-vs-flat stage and archives it under the same bench name.
    if cli.scenario == Scenario::Megacity {
        let mut records: Vec<BenchRecord> = Vec::new();
        megacity_shard_walltime(&mut records, &cli, &pool);
        if let Some(path) =
            write_artifact("BENCH_table1.json", &bench_json("table1", &cli, &records))
        {
            println!("wrote {}", path.display());
        }
        return;
    }

    let mut csv = String::from("orders,algo,nuv,tc,wall_secs,optimal\n");
    let mut records: Vec<BenchRecord> = Vec::new();
    println!(
        "Table I: DRL vs exact optimum on tiny instances ({} scoring thread{})",
        cli.threads,
        if cli.threads == 1 { "" } else { "s" }
    );
    for &n in &sizes {
        let instance = presets.tiny_instance(n, cli.seed);
        println!("\n== {n} orders, 5 vehicles ==");
        println!(
            "{:<10} {:>5} {:>12} {:>12} {:>10}",
            "algo", "NUV", "TC", "wall(s)", "note"
        );
        for &spec in &specs {
            let mut model = build_and_train(spec, &presets, &instance, cli.episodes, cli.seed);
            let row = evaluate_pooled(model.dispatcher(), &instance, &pool);
            let record = BenchRecord::from_row(n.to_string(), &row);
            check_finite(&record);
            println!(
                "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                row.algo, row.nuv, row.total_cost, row.wall_secs, ""
            );
            csv.push_str(&format!(
                "{n},{},{},{:.3},{:.6},\n",
                row.algo, row.nuv, row.total_cost, row.wall_secs
            ));
            records.push(record);
        }
        let start = Instant::now();
        let solver = ExactSolver::with_time_limit(exact_budget);
        match solver.solve(&instance) {
            Some(sol) => {
                let wall = start.elapsed().as_secs_f64();
                let note = if sol.optimal { "optimal" } else { "timeout" };
                let record = BenchRecord {
                    instance: n.to_string(),
                    algo: "EXACT".to_string(),
                    nuv: sol.nuv,
                    total_cost: sol.total_cost,
                    wall_secs: wall,
                    epochs: 0,
                };
                check_finite(&record);
                println!(
                    "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                    "EXACT", sol.nuv, sol.total_cost, wall, note
                );
                csv.push_str(&format!(
                    "{n},EXACT,{},{:.3},{:.6},{}\n",
                    sol.nuv, sol.total_cost, wall, sol.optimal
                ));
                records.push(record);
            }
            None => {
                println!(
                    "{:<10} {:>5} {:>12} {:>12} {:>10}",
                    "EXACT", "-", "-", "-", "infeasible"
                );
                csv.push_str(&format!("{n},EXACT,,,,false\n"));
            }
        }
    }
    // Insertion-sweep wall times ride along in the same artifact (and gate
    // the incremental evaluator against the naive reference).
    sweep_walltime(&mut records);
    // The metro-scale B x K sweep ratchet: shipped SoA cached evaluator vs
    // the AoS reference layout and the naive Algorithm 2 baseline.
    metro_sweep_walltime(&mut records, &cli);
    // Region-sharded dispatch wall times per `--shards` count (and the
    // shards=4 vs shards=1 gate on the metro preset).
    metro_shard_walltime(&mut records, &cli, &pool);
    // Under --scenario metro_disrupted, the disrupted smoke episode and
    // its non-vacuity gates ride along in the same artifact.
    if cli.scenario == Scenario::MetroDisrupted {
        disrupted_smoke(&mut records, &cli, &pool);
    }

    if let Some(path) = write_artifact("table1.csv", &csv) {
        println!("\nwrote {}", path.display());
    }
    if let Some(path) = write_artifact("BENCH_table1.json", &bench_json("table1", &cli, &records)) {
        println!("wrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): graph models (DGN/ST-DDGN) match or beat DQN/AC; \
         exact achieves the lowest TC but orders of magnitude more wall time, \
         becoming intractable as orders grow."
    );
}
