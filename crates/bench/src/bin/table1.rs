//! **Table I** regenerator: DRL methods vs the exact optimum on tiny
//! instances (5 vehicles; 6, 7, 8, 10 orders): NUV, TC and wall time.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin table1 \
//!     [--quick] [--episodes N] [--threads N]
//! ```
//!
//! Besides the printed table and `table1.csv`, the run is archived as
//! machine-readable `target/experiments/BENCH_table1.json` (wall time per
//! policy, thread count, epoch counts) so the perf trajectory across PRs is
//! recorded; the CI bench-smoke job uploads it and fails on any panic or
//! non-finite metric.

use dpdp_bench::{bench_json, build_and_train, check_finite, write_artifact, BenchRecord, Cli};
use dpdp_core::experiment::evaluate_pooled;
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_rl::ModelKind;
use std::time::{Duration, Instant};

fn main() {
    let cli = Cli::parse(60, 1);
    let presets = cli.presets();
    let sizes = [6usize, 7, 8, 10];
    let specs = [
        ModelSpec::Dqn(ModelKind::Dqn),
        ModelSpec::ActorCritic,
        ModelSpec::Dqn(ModelKind::Dgn),
        ModelSpec::Dqn(ModelKind::StDdgn),
    ];
    // The paper's Gurobi runs took 300 s (6 orders) and 2818 s (7 orders)
    // and were intractable beyond; we cap our branch-and-bound likewise —
    // tighter under --quick, which doubles as the CI smoke budget.
    let exact_budget = Duration::from_secs(if cli.quick { 2 } else { 30 });

    // One scoring pool for every evaluation episode (workers outlive runs).
    let pool = std::sync::Arc::new(dpdp_pool::ThreadPool::new(cli.threads));
    let mut csv = String::from("orders,algo,nuv,tc,wall_secs,optimal\n");
    let mut records: Vec<BenchRecord> = Vec::new();
    println!(
        "Table I: DRL vs exact optimum on tiny instances ({} scoring thread{})",
        cli.threads,
        if cli.threads == 1 { "" } else { "s" }
    );
    for &n in &sizes {
        let instance = presets.tiny_instance(n, cli.seed);
        println!("\n== {n} orders, 5 vehicles ==");
        println!(
            "{:<10} {:>5} {:>12} {:>12} {:>10}",
            "algo", "NUV", "TC", "wall(s)", "note"
        );
        for &spec in &specs {
            let mut model = build_and_train(spec, &presets, &instance, cli.episodes, cli.seed);
            let row = evaluate_pooled(model.dispatcher(), &instance, &pool);
            let record = BenchRecord::from_row(n.to_string(), &row);
            check_finite(&record);
            println!(
                "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                row.algo, row.nuv, row.total_cost, row.wall_secs, ""
            );
            csv.push_str(&format!(
                "{n},{},{},{:.3},{:.6},\n",
                row.algo, row.nuv, row.total_cost, row.wall_secs
            ));
            records.push(record);
        }
        let start = Instant::now();
        let solver = ExactSolver::with_time_limit(exact_budget);
        match solver.solve(&instance) {
            Some(sol) => {
                let wall = start.elapsed().as_secs_f64();
                let note = if sol.optimal { "optimal" } else { "timeout" };
                let record = BenchRecord {
                    instance: n.to_string(),
                    algo: "EXACT".to_string(),
                    nuv: sol.nuv,
                    total_cost: sol.total_cost,
                    wall_secs: wall,
                    epochs: 0,
                };
                check_finite(&record);
                println!(
                    "{:<10} {:>5} {:>12.2} {:>12.4} {:>10}",
                    "EXACT", sol.nuv, sol.total_cost, wall, note
                );
                csv.push_str(&format!(
                    "{n},EXACT,{},{:.3},{:.6},{}\n",
                    sol.nuv, sol.total_cost, wall, sol.optimal
                ));
                records.push(record);
            }
            None => {
                println!(
                    "{:<10} {:>5} {:>12} {:>12} {:>10}",
                    "EXACT", "-", "-", "-", "infeasible"
                );
                csv.push_str(&format!("{n},EXACT,,,,false\n"));
            }
        }
    }
    if let Some(path) = write_artifact("table1.csv", &csv) {
        println!("\nwrote {}", path.display());
    }
    if let Some(path) = write_artifact("BENCH_table1.json", &bench_json("table1", &cli, &records)) {
        println!("wrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): graph models (DGN/ST-DDGN) match or beat DQN/AC; \
         exact achieves the lowest TC but orders of magnitude more wall time, \
         becoming intractable as orders grow."
    );
}
