//! **Fig. 8** regenerator: ablation convergence curves — NUV and TC per
//! training episode for DDQN / ST-DDQN / DDGN / ST-DDGN (Table II) against
//! the Baseline-1 reference line.
//!
//! Rides the observer-based experiment pipeline: every curve point streams
//! through a [`TrainObserver`] into a [`CurveProbe`] (CSV + running tail
//! statistics) and the console as training runs — no `TrainReport` is
//! materialized or scraped.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig8 [--quick] [--episodes N]
//! ```

use dpdp_bench::{write_artifact, Cli, Model};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;
use dpdp_rl::EpisodePoint;

/// Streams each curve point to the console (thinned to `stride`) and into
/// the wrapped [`CurveProbe`].
struct ConsoleCurve {
    probe: CurveProbe,
    stride: usize,
}

impl ConsoleCurve {
    fn print(p: &EpisodePoint) {
        println!(
            "  ep {:>4}: {:>3} / {:>10.1}",
            p.episode, p.nuv, p.total_cost
        );
    }
}

impl TrainObserver for ConsoleCurve {
    fn on_episode(&mut self, p: &EpisodePoint) {
        if p.episode.is_multiple_of(self.stride) {
            Self::print(p);
        }
        self.probe.on_episode(p);
    }
}

fn main() {
    let cli = Cli::parse(200, 1);
    let presets = cli.presets();
    let instance = presets.large_instance(cli.seed);

    println!(
        "Fig. 8: ablation convergence on a large-scale instance ({} episodes)",
        cli.episodes
    );

    // Baseline-1 reference line.
    let mut b1 = Model::build(ModelSpec::Baseline1, &presets, cli.seed);
    let b1_row = evaluate_threads(b1.dispatcher(), &instance, cli.threads);
    println!(
        "Baseline 1 reference: NUV {} TC {:.1}",
        b1_row.nuv, b1_row.total_cost
    );

    for spec in ModelSpec::ablation_lineup() {
        let mut model = Model::build(spec, &presets, cli.seed);
        model.set_prediction(Some(presets.train_prediction(4)));
        let stride = (cli.episodes / 10).max(1);
        println!("\n{} convergence (episode: NUV / TC):", spec.name());
        let mut curve = ConsoleCurve {
            probe: CurveProbe::new(cli.episodes / 10 + 1),
            stride,
        };
        model.train_on_observed(&instance, cli.episodes, None, &mut curve);
        // The thinned console stream always ends with the final point.
        if let Some(last) = &curve.probe.last {
            if !last.episode.is_multiple_of(stride) {
                ConsoleCurve::print(last);
            }
        }
        println!(
            "  converged (last 10% mean): NUV {:.1}, TC {:.1}, best TC {:.1}",
            curve.probe.tail_mean_nuv().unwrap_or(f64::NAN),
            curve.probe.tail_mean_cost().unwrap_or(f64::NAN),
            curve.probe.best_cost.unwrap_or(f64::NAN)
        );
        write_artifact(
            &format!("fig8_{}.csv", spec.name().to_lowercase().replace('-', "_")),
            curve.probe.csv(),
        );
    }
    println!(
        "\nExpected shape (paper): all four DRL models end below the Baseline-1 NUV; \
         graph models (DDGN/ST-DDGN) converge faster and ~5% cheaper than DDQN/ST-DDQN; \
         the ST variants start converging earlier than their plain counterparts."
    );
    println!("wrote fig8_*.csv under target/experiments/");
}
