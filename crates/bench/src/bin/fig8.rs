//! **Fig. 8** regenerator: ablation convergence curves — NUV and TC per
//! training episode for DDQN / ST-DDQN / DDGN / ST-DDGN (Table II) against
//! the Baseline-1 reference line.
//!
//! ```text
//! cargo run -p dpdp-bench --release --bin fig8 [--quick] [--episodes N]
//! ```

use dpdp_bench::{tail_mean_nuv, write_artifact, Cli, Model};
use dpdp_core::models::ModelSpec;
use dpdp_core::prelude::*;

fn main() {
    let cli = Cli::parse(200, 1);
    let presets = cli.presets();
    let instance = presets.large_instance(cli.seed);

    println!(
        "Fig. 8: ablation convergence on a large-scale instance ({} episodes)",
        cli.episodes
    );

    // Baseline-1 reference line.
    let mut b1 = Model::build(ModelSpec::Baseline1, &presets, cli.seed);
    let b1_row = evaluate_threads(b1.dispatcher(), &instance, cli.threads);
    println!(
        "Baseline 1 reference: NUV {} TC {:.1}",
        b1_row.nuv, b1_row.total_cost
    );

    for spec in ModelSpec::ablation_lineup() {
        let mut model = Model::build(spec, &presets, cli.seed);
        model.set_prediction(Some(presets.train_prediction(4)));
        let report = model.train_on(&instance, cli.episodes, None);
        let stride = (cli.episodes / 10).max(1);
        println!("\n{} convergence (episode: NUV / TC):", spec.name());
        for p in report::thin_curve(&report.points, stride) {
            println!(
                "  ep {:>4}: {:>3} / {:>10.1}",
                p.episode, p.nuv, p.total_cost
            );
        }
        println!(
            "  converged (last 10% mean): NUV {:.1}, TC {:.1}, best TC {:.1}",
            tail_mean_nuv(&report.points, cli.episodes / 10 + 1),
            report
                .tail_mean_cost(cli.episodes / 10 + 1)
                .unwrap_or(f64::NAN),
            report.best_cost().unwrap_or(f64::NAN)
        );
        write_artifact(
            &format!("fig8_{}.csv", spec.name().to_lowercase().replace('-', "_")),
            &report::curve_to_csv(&report.points),
        );
    }
    println!(
        "\nExpected shape (paper): all four DRL models end below the Baseline-1 NUV; \
         graph models (DDGN/ST-DDGN) converge faster and ~5% cheaper than DDQN/ST-DDQN; \
         the ST variants start converging earlier than their plain counterparts."
    );
    println!("wrote fig8_*.csv under target/experiments/");
}
