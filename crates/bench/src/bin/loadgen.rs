//! Load generator for the `dpdp-server` decision service.
//!
//! Spawns (or connects to) a server, drives N concurrent tenants — each
//! its own TCP session and episode — through a deterministic order
//! workload, and measures sustained throughput plus p50/p99 wall-clock
//! decision latency. Results are archived as
//! `target/experiments/BENCH_serve.json`, the serving counterpart of
//! `BENCH_table1.json`.
//!
//! The binary exits non-zero when the run is not trustworthy: any
//! protocol error, a lost/extra decision, an episode that fails to drain
//! to `METRICS`, or a non-finite latency quantile. CI runs it as the
//! server smoke gate.
//!
//! ```text
//! cargo run --release -p dpdp-bench --bin loadgen -- \
//!     --tenants 4 --orders 50 --threads 2
//! ```
//!
//! `--chaos` swaps the latency bench for a **fault-injection gate**: each
//! tenant is assigned a seeded fault — killed connection + `RESUME`, an
//! injected `PANIC` crash + `RESUME`, malformed-frame floods, slow-loris
//! partial writes, or going idle until the server reaps it — and the run
//! passes only if *every* tenant still converges to the exact in-process
//! reference metrics. Results land in `target/experiments/BENCH_chaos.json`.

use dpdp_bench::write_artifact;
use dpdp_net::{NodeId, Order, OrderId, TimePoint};
use dpdp_server::{
    token_from_ok_detail, ClientError, DecisionServer, ServeClient, ServerConfig, ServerMsg,
};
use dpdp_sim::{BufferingMode, EpisodeMetrics, Simulator, StreamCommand};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const USAGE: &str = "\
options:
  --tenants N   concurrent tenant sessions (default 4)
  --orders N    orders per tenant (default 50)
  --threads N   server scoring pool width (default 2)
  --queue N     per-session command queue bound (default 64)
  --seed N      base seed; tenant i uses seed + i (default 7)
  --policy P    dispatch policy for every tenant (default baseline1)
  --addr A      drive an external server instead of spawning one in-process
  --chaos       run the fault-injection gate instead of the latency bench
  -h, --help    print this help";

fn fail_usage(msg: &str) -> ! {
    eprintln!("loadgen: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct LoadCli {
    tenants: usize,
    orders: usize,
    threads: usize,
    queue: usize,
    seed: u64,
    policy: String,
    addr: Option<String>,
    chaos: bool,
}

fn parse_cli() -> LoadCli {
    let mut cli = LoadCli {
        tenants: 4,
        orders: 50,
        threads: 2,
        queue: 64,
        seed: 7,
        policy: "baseline1".to_string(),
        addr: None,
        chaos: false,
    };
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> usize {
        match it.next().and_then(|v| v.parse().ok()) {
            Some(v) if v >= 1 => v,
            _ => fail_usage(&format!("flag `{name}` needs a positive integer")),
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tenants" => cli.tenants = num(&mut it, "--tenants"),
            "--orders" => cli.orders = num(&mut it, "--orders"),
            "--threads" => cli.threads = num(&mut it, "--threads"),
            "--queue" => cli.queue = num(&mut it, "--queue"),
            "--seed" => cli.seed = num(&mut it, "--seed") as u64,
            "--policy" => match it.next() {
                Some(v) => cli.policy = v.clone(),
                None => fail_usage("flag `--policy` needs a value"),
            },
            "--addr" => match it.next() {
                Some(v) => cli.addr = Some(v.clone()),
                None => fail_usage("flag `--addr` needs a value"),
            },
            "--chaos" => cli.chaos = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail_usage(&format!("unknown flag `{other}`")),
        }
    }
    cli
}

/// One tenant's measured episode.
struct TenantOutcome {
    tenant: usize,
    latencies_ms: Vec<f64>,
    served: usize,
    rejected: usize,
    protocol_errors: usize,
}

/// Drives one tenant session: per order, send `ORDER` + a `FLUSH`
/// heartbeat one virtual second later (immediate buffering decides the
/// order at its creation instant once the heartbeat proves no earlier
/// event can arrive), then block until its `DECISION` comes back —
/// measuring the full wire round trip through the live episode.
fn run_tenant(addr: SocketAddr, tenant: usize, cli: &LoadCli) -> Result<TenantOutcome, String> {
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("tenant {tenant}: connect: {e}"))?;
    client
        .hello(
            &format!("tenant{tenant}"),
            "ring12",
            cli.seed + tenant as u64,
            &cli.policy,
            0.0,
        )
        .map_err(|e| format!("tenant {tenant}: handshake: {e}"))?;

    let mut outcome = TenantOutcome {
        tenant,
        latencies_ms: Vec::with_capacity(cli.orders),
        served: 0,
        rejected: 0,
        protocol_errors: 0,
    };
    for k in 0..cli.orders {
        // A deterministic tour of the ring's factories, staggered per
        // tenant so concurrent episodes are genuinely different.
        let pickup = 1 + ((k * 5 + tenant) % 12) as u32;
        let delivery = 1 + ((k * 5 + tenant + 4) % 12) as u32;
        let created_s = 8.0 * 3600.0 + 30.0 * k as f64;
        let deadline_s = created_s + 6.0 * 3600.0;
        let sent = Instant::now();
        client
            .order(pickup, delivery, 3.0, created_s, deadline_s)
            .map_err(|e| format!("tenant {tenant}: order {k}: {e}"))?;
        client
            .flush(created_s + 1.0)
            .map_err(|e| format!("tenant {tenant}: flush {k}: {e}"))?;
        loop {
            match client.next_msg() {
                Ok(Some(ServerMsg::Decision(d))) => {
                    if d.order.index() != k {
                        return Err(format!(
                            "tenant {tenant}: expected decision for order {k}, got {}",
                            d.order.index()
                        ));
                    }
                    outcome
                        .latencies_ms
                        .push(sent.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                Ok(Some(ServerMsg::Err { code, detail })) => {
                    eprintln!("loadgen: tenant {tenant}: ERR {code} {detail}");
                    outcome.protocol_errors += 1;
                }
                Ok(Some(_)) => continue, // EPOCH / DISRUPT narration
                Ok(None) => return Err(format!("tenant {tenant}: server hung up mid-episode")),
                Err(e) => return Err(format!("tenant {tenant}: read: {e}")),
            }
        }
    }
    client
        .drain()
        .map_err(|e| format!("tenant {tenant}: drain: {e}"))?;
    let episode = client
        .collect_episode()
        .map_err(|e| format!("tenant {tenant}: drain read: {e}"))?;
    outcome.protocol_errors += episode.errors.len();
    let metrics = episode
        .metrics
        .ok_or_else(|| format!("tenant {tenant}: episode ended without METRICS"))?;
    outcome.served = metrics.served;
    outcome.rejected = metrics.rejected;
    if metrics.served + metrics.rejected != cli.orders {
        return Err(format!(
            "tenant {tenant}: {} decisions for {} orders",
            metrics.served + metrics.rejected,
            cli.orders
        ));
    }
    Ok(outcome)
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

// ---------------------------------------------------------------------
// Chaos mode: seeded fault injection, gated on bit-identical recovery.
// ---------------------------------------------------------------------

/// The chaos server's idle deadline. Generous enough that only the
/// deliberately-silent ghost tenant ever trips it, small enough that the
/// gate still runs in seconds.
const CHAOS_IDLE: Duration = Duration::from_secs(3);

/// xorshift64* — the whole chaos schedule must replay from `--seed`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One tenant's assigned misfortune.
#[derive(Clone, Copy)]
enum Fault {
    /// Connection killed mid-episode, resumed; later an injected `PANIC`
    /// crash, resumed again.
    KillThenPanic,
    /// Garbage and oversized frames interleaved with real orders.
    MalformedFlood,
    /// Order frames dripped out a few bytes at a time.
    SlowLoris,
    /// Goes silent until the server's idle deadline reaps it, then
    /// resumes.
    IdleGhost,
}

fn fault_for(tenant: usize) -> (Fault, &'static str) {
    match tenant % 4 {
        0 => (Fault::KillThenPanic, "kill+panic"),
        1 => (Fault::MalformedFlood, "malformed-flood"),
        2 => (Fault::SlowLoris, "slow-loris"),
        _ => (Fault::IdleGhost, "idle-ghost"),
    }
}

/// The deterministic per-tenant workload — shared by the wire run and
/// the in-process reference, so the two must land identical episodes.
fn chaos_order(tenant: usize, k: usize) -> (u32, u32, f64, f64) {
    let pickup = 1 + ((k * 5 + tenant) % 12) as u32;
    let delivery = 1 + ((k * 5 + tenant + 4) % 12) as u32;
    let created_s = 8.0 * 3600.0 + 30.0 * k as f64;
    let deadline_s = created_s + 6.0 * 3600.0;
    (pickup, delivery, created_s, deadline_s)
}

/// Replays the tenant's exact command stream (`ORDER` + `FLUSH`
/// heartbeat per order) through an in-process `Simulator::serve` — the
/// metrics every chaos tenant must converge to, faults notwithstanding.
fn chaos_reference(tenant: usize, cli: &LoadCli) -> Result<EpisodeMetrics, String> {
    let instance = dpdp_server::preset::build_instance("ring12")
        .ok_or_else(|| "unknown preset ring12".to_string())?;
    let mut policy = dpdp_server::preset::build_policy(&cli.policy)
        .ok_or_else(|| format!("unknown policy {}", cli.policy))?;
    let sim = Simulator::builder(&instance)
        .buffering(BufferingMode::Immediate)
        .seed(cli.seed + tenant as u64)
        .build()
        .map_err(|e| e.to_string())?;
    let (tx, rx) = std::sync::mpsc::channel();
    for k in 0..cli.orders {
        let (pickup, delivery, created_s, deadline_s) = chaos_order(tenant, k);
        let order = Order::new(
            OrderId(0),
            NodeId(pickup),
            NodeId(delivery),
            3.0,
            TimePoint::from_seconds(created_s),
            TimePoint::from_seconds(deadline_s),
        )
        .map_err(|e| e.to_string())?;
        let _ = tx.send(StreamCommand::Order(order));
        let _ = tx.send(StreamCommand::Flush {
            at: TimePoint::from_seconds(created_s + 1.0),
        });
    }
    drop(tx);
    Ok(sim.serve(rx, policy.as_mut()).metrics)
}

/// Reconnects and `RESUME`s a tenant, retrying while the dying
/// predecessor session still holds the journal claim.
fn chaos_resume(
    addr: SocketAddr,
    name: &str,
    token: &str,
    ack: usize,
) -> Result<ServeClient, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client =
            ServeClient::connect(addr).map_err(|e| format!("{name}: reconnect: {e}"))?;
        match client.resume(name, token, ack) {
            Ok(_) => return Ok(client),
            Err(ClientError::Rejected { code, .. })
                if code == "session-active" && Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("{name}: resume: {e}")),
        }
    }
}

struct ChaosOutcome {
    tenant: usize,
    fault: &'static str,
    resumes: usize,
    injected: usize,
    decisions: usize,
    metrics_match: bool,
}

fn run_chaos_tenant(
    addr: SocketAddr,
    tenant: usize,
    cli: &LoadCli,
) -> Result<ChaosOutcome, String> {
    let (fault, fault_name) = fault_for(tenant);
    let mut rng = Rng::new(cli.seed ^ ((tenant as u64 + 1).wrapping_mul(0x0123_4567_89ab_cdef)));
    let reference =
        chaos_reference(tenant, cli).map_err(|e| format!("tenant {tenant}: reference: {e}"))?;
    let name = format!("chaos{tenant}");
    let oversized = "X".repeat(20 * 1024);

    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("tenant {tenant}: connect: {e}"))?;
    let detail = client
        .hello(&name, "ring12", cli.seed + tenant as u64, &cli.policy, 0.0)
        .map_err(|e| format!("tenant {tenant}: handshake: {e}"))?;
    let token = token_from_ok_detail(&detail)
        .ok_or_else(|| format!("tenant {tenant}: OK HELLO carried no token"))?
        .to_string();

    // The seeded interruption schedule (orders >= 8 keeps every range
    // non-degenerate; run_chaos enforces that).
    let kill_at = 1 + rng.below(cli.orders / 2 - 1);
    let panic_at = kill_at + 1 + rng.below(cli.orders - kill_at - 2);
    let ghost_at = 1 + rng.below(cli.orders - 2);

    let mut ack = 0usize;
    let mut decisions = 0usize;
    let mut resumes = 0usize;
    let mut injected = 0usize;
    let mut pending_errors = 0usize;

    for k in 0..cli.orders {
        match fault {
            Fault::KillThenPanic => {
                if k == kill_at {
                    // Abrupt socket death, no DRAIN: the journal survives.
                    drop(client);
                    client = chaos_resume(addr, &name, &token, ack)?;
                    resumes += 1;
                } else if k == panic_at {
                    client
                        .send_line("PANIC")
                        .map_err(|e| format!("tenant {tenant}: panic frame: {e}"))?;
                    loop {
                        match client.next_msg() {
                            Ok(Some(ServerMsg::Err { code, .. })) if code == "internal" => break,
                            Ok(Some(ServerMsg::Epoch { .. })) | Ok(Some(ServerMsg::Disrupt(_))) => {
                                ack += 1;
                            }
                            Ok(Some(ServerMsg::Metrics(_))) => {
                                return Err(format!(
                                    "tenant {tenant}: crashed session reported METRICS"
                                ));
                            }
                            Ok(Some(_)) => {}
                            Ok(None) => {
                                return Err(format!(
                                    "tenant {tenant}: hung up before ERR internal"
                                ));
                            }
                            Err(e) => return Err(format!("tenant {tenant}: panic read: {e}")),
                        }
                    }
                    client = chaos_resume(addr, &name, &token, ack)?;
                    resumes += 1;
                }
            }
            Fault::IdleGhost => {
                if k == ghost_at {
                    // Outlive the idle deadline; the server reaps the
                    // socket through the drain path and keeps the journal.
                    std::thread::sleep(CHAOS_IDLE + Duration::from_millis(600));
                    let mut reaped = false;
                    loop {
                        match client.next_msg() {
                            Ok(Some(ServerMsg::Err { code, .. })) if code == "idle-timeout" => {
                                reaped = true;
                            }
                            Ok(Some(ServerMsg::Epoch { .. })) | Ok(Some(ServerMsg::Disrupt(_))) => {
                                ack += 1;
                            }
                            Ok(Some(ServerMsg::Decision(_))) => {
                                return Err(format!(
                                    "tenant {tenant}: unexpected decision while idle"
                                ));
                            }
                            Ok(Some(ServerMsg::Bye)) | Ok(None) | Err(_) => break,
                            Ok(Some(_)) => {} // the partial episode's METRICS
                        }
                    }
                    if !reaped {
                        return Err(format!("tenant {tenant}: idle ghost was never reaped"));
                    }
                    client = chaos_resume(addr, &name, &token, ack)?;
                    resumes += 1;
                }
            }
            Fault::MalformedFlood => {
                if rng.below(3) == 0 {
                    let garbage = match rng.below(3) {
                        0 => "BOGUS 1 2 3",
                        1 => "ORDER not numbers at all",
                        _ => oversized.as_str(),
                    };
                    client
                        .send_line(garbage)
                        .map_err(|e| format!("tenant {tenant}: garbage frame: {e}"))?;
                    injected += 1;
                    pending_errors += 1;
                }
            }
            Fault::SlowLoris => {}
        }

        let (pickup, delivery, created_s, deadline_s) = chaos_order(tenant, k);
        if matches!(fault, Fault::SlowLoris) && k % 7 == 3 {
            // Drip the frame out a few bytes at a time: partial frames
            // must neither wedge the reader nor corrupt parsing.
            let frame = format!("ORDER {pickup} {delivery} 3 {created_s} {deadline_s}\n");
            for chunk in frame.as_bytes().chunks(4) {
                client
                    .send_bytes(chunk)
                    .map_err(|e| format!("tenant {tenant}: loris chunk: {e}"))?;
                std::thread::sleep(Duration::from_millis(15));
            }
        } else {
            client
                .order(pickup, delivery, 3.0, created_s, deadline_s)
                .map_err(|e| format!("tenant {tenant}: order {k}: {e}"))?;
        }
        client
            .flush(created_s + 1.0)
            .map_err(|e| format!("tenant {tenant}: flush {k}: {e}"))?;

        // Block until this order's decision; structured errors are only
        // acceptable when we provoked them.
        loop {
            match client.next_msg() {
                Ok(Some(ServerMsg::Decision(d))) => {
                    ack += 1;
                    if d.order.index() != k {
                        return Err(format!(
                            "tenant {tenant}: expected decision for order {k}, got {}",
                            d.order.index()
                        ));
                    }
                    decisions += 1;
                    break;
                }
                Ok(Some(ServerMsg::Epoch { .. })) | Ok(Some(ServerMsg::Disrupt(_))) => ack += 1,
                Ok(Some(ServerMsg::Err { code, detail })) => {
                    if pending_errors == 0 {
                        return Err(format!("tenant {tenant}: unexpected ERR {code} {detail}"));
                    }
                    pending_errors -= 1;
                }
                Ok(Some(_)) => {}
                Ok(None) => return Err(format!("tenant {tenant}: server hung up mid-episode")),
                Err(e) => return Err(format!("tenant {tenant}: read: {e}")),
            }
        }
    }

    client
        .drain()
        .map_err(|e| format!("tenant {tenant}: drain: {e}"))?;
    let episode = client
        .collect_episode()
        .map_err(|e| format!("tenant {tenant}: drain read: {e}"))?;
    for (code, detail) in &episode.errors {
        if pending_errors == 0 {
            return Err(format!("tenant {tenant}: unexpected ERR {code} {detail}"));
        }
        pending_errors -= 1;
    }
    if pending_errors != 0 {
        return Err(format!(
            "tenant {tenant}: {pending_errors} injected frames drew no ERR"
        ));
    }
    decisions += episode.decisions.len();
    if decisions != cli.orders {
        return Err(format!(
            "tenant {tenant}: {decisions} decisions for {} orders",
            cli.orders
        ));
    }
    let metrics = episode
        .metrics
        .ok_or_else(|| format!("tenant {tenant}: episode ended without METRICS"))?;
    Ok(ChaosOutcome {
        tenant,
        fault: fault_name,
        resumes,
        injected,
        decisions,
        metrics_match: metrics == reference,
    })
}

fn run_chaos(cli: &LoadCli) -> ! {
    if cli.addr.is_some() {
        fail_usage(
            "--chaos spawns its own server (it needs debug frames + an idle deadline); drop --addr",
        );
    }
    if cli.orders < 8 {
        fail_usage("--chaos needs --orders >= 8 for a non-degenerate fault schedule");
    }
    let server = DecisionServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: cli.threads,
            queue_depth: cli.queue,
            idle_timeout: Some(CHAOS_IDLE),
            debug_frames: true,
            ..ServerConfig::default()
        },
    )
    .and_then(DecisionServer::spawn)
    .unwrap_or_else(|e| {
        eprintln!("loadgen: cannot start chaos server: {e}");
        std::process::exit(1);
    });
    let addr = server.addr();

    let wall = Instant::now();
    let outcomes: Vec<ChaosOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.tenants)
            .map(|tenant| {
                let cli = &cli;
                scope.spawn(move || run_chaos_tenant(addr, tenant, cli))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(msg)) => {
                    eprintln!("loadgen: chaos: {msg}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("loadgen: chaos tenant thread panicked");
                    std::process::exit(1);
                }
            })
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();

    let mismatches = outcomes.iter().filter(|o| !o.metrics_match).count();
    let total_resumes: usize = outcomes.iter().map(|o| o.resumes).sum();
    let total_injected: usize = outcomes.iter().map(|o| o.injected).sum();
    let kill_tenants = (0..cli.tenants).filter(|t| t % 4 == 0).count();
    let ghost_tenants = (0..cli.tenants).filter(|t| t % 4 == 3).count();

    let mut rows = String::new();
    for o in &outcomes {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"tenant\": {}, \"fault\": \"{}\", \"resumes\": {}, \"injected_frames\": {}, \
             \"decisions\": {}, \"metrics_match\": {}}}",
            o.tenant, o.fault, o.resumes, o.injected, o.decisions, o.metrics_match,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"preset\": \"ring12\",\n  \"policy\": \"{}\",\n  \
         \"tenants\": {},\n  \"orders_per_tenant\": {},\n  \"threads\": {},\n  \"seed\": {},\n  \
         \"wall_secs\": {:.3},\n  \"resumes\": {},\n  \"supervised_panics\": {},\n  \
         \"reaped\": {},\n  \"injected_frames\": {},\n  \"metric_mismatches\": {},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        cli.policy,
        cli.tenants,
        cli.orders,
        cli.threads,
        cli.seed,
        wall_secs,
        total_resumes,
        stats.panics,
        stats.reaped,
        total_injected,
        mismatches,
        rows,
    );
    match write_artifact("BENCH_chaos.json", &json) {
        Some(path) => println!("wrote {}", path.display()),
        None => {
            eprintln!("loadgen: cannot write BENCH_chaos.json");
            std::process::exit(1);
        }
    }
    println!(
        "chaos: {} tenants x {} orders in {wall_secs:.2}s -> {total_resumes} resumes, \
         {} supervised panics, {} reaped, {total_injected} injected frames, \
         {mismatches} metric mismatches",
        cli.tenants, cli.orders, stats.panics, stats.reaped,
    );

    if mismatches > 0 {
        eprintln!("loadgen: FAIL: {mismatches} tenants diverged from their reference metrics");
        std::process::exit(1);
    }
    if stats.panics < kill_tenants {
        eprintln!(
            "loadgen: FAIL: expected >= {kill_tenants} supervised panics, saw {}",
            stats.panics
        );
        std::process::exit(1);
    }
    if stats.reaped < ghost_tenants {
        eprintln!(
            "loadgen: FAIL: expected >= {ghost_tenants} idle reaps, saw {}",
            stats.reaped
        );
        std::process::exit(1);
    }
    if stats.resumed < total_resumes {
        eprintln!(
            "loadgen: FAIL: clients resumed {total_resumes} times but the server counted {}",
            stats.resumed
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let cli = parse_cli();
    if cli.chaos {
        run_chaos(&cli);
    }
    let spawned = if cli.addr.is_none() {
        let server = DecisionServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: cli.threads,
                queue_depth: cli.queue,
                ..ServerConfig::default()
            },
        )
        .and_then(DecisionServer::spawn)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: cannot start in-process server: {e}");
            std::process::exit(1);
        });
        Some(server)
    } else {
        None
    };
    let addr: SocketAddr = match (&cli.addr, &spawned) {
        (Some(a), _) => a.parse().unwrap_or_else(|_| fail_usage("bad --addr")),
        (None, Some(server)) => server.addr(),
        (None, None) => unreachable!("either an external addr or a spawned server"),
    };

    let wall = Instant::now();
    let outcomes: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.tenants)
            .map(|tenant| {
                let cli = &cli;
                scope.spawn(move || run_tenant(addr, tenant, cli))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(msg)) => {
                    eprintln!("loadgen: {msg}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("loadgen: tenant thread panicked");
                    std::process::exit(1);
                }
            })
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    if let Some(server) = spawned {
        server.shutdown();
    }

    let mut all_ms: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ms.iter().copied())
        .collect();
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let protocol_errors: usize = outcomes.iter().map(|o| o.protocol_errors).sum();
    let total_orders = cli.tenants * cli.orders;
    let p50 = quantile_ms(&all_ms, 0.50);
    let p99 = quantile_ms(&all_ms, 0.99);
    let orders_per_sec = total_orders as f64 / wall_secs;

    let mut rows = String::new();
    for o in &outcomes {
        let mut ms = o.latencies_ms.clone();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"tenant\": {}, \"served\": {}, \"rejected\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            o.tenant,
            o.served,
            o.rejected,
            quantile_ms(&ms, 0.50),
            quantile_ms(&ms, 0.99),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"preset\": \"ring12\",\n  \"policy\": \"{}\",\n  \
         \"tenants\": {},\n  \"orders_per_tenant\": {},\n  \"threads\": {},\n  \
         \"queue_depth\": {},\n  \"seed\": {},\n  \"wall_secs\": {:.3},\n  \
         \"orders_per_sec\": {:.1},\n  \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \
         \"protocol_errors\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cli.policy,
        cli.tenants,
        cli.orders,
        cli.threads,
        cli.queue,
        cli.seed,
        wall_secs,
        orders_per_sec,
        p50,
        p99,
        protocol_errors,
        rows,
    );
    match write_artifact("BENCH_serve.json", &json) {
        Some(path) => println!("wrote {}", path.display()),
        None => {
            eprintln!("loadgen: cannot write BENCH_serve.json");
            std::process::exit(1);
        }
    }
    println!(
        "serve: {} tenants x {} orders in {wall_secs:.2}s -> {orders_per_sec:.0} orders/s, \
         p50 {p50:.2}ms, p99 {p99:.2}ms, {protocol_errors} protocol errors",
        cli.tenants, cli.orders,
    );

    // The CI gates: a smoke run must be error-free with finite tails.
    if protocol_errors > 0 {
        eprintln!("loadgen: FAIL: {protocol_errors} protocol errors");
        std::process::exit(1);
    }
    if !(p50.is_finite() && p99.is_finite()) {
        eprintln!("loadgen: FAIL: non-finite latency quantiles (p50 {p50}, p99 {p99})");
        std::process::exit(1);
    }
    if all_ms.len() != total_orders {
        eprintln!(
            "loadgen: FAIL: {} latency samples for {} orders",
            all_ms.len(),
            total_orders
        );
        std::process::exit(1);
    }
}
