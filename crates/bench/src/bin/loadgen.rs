//! Load generator for the `dpdp-server` decision service.
//!
//! Spawns (or connects to) a server, drives N concurrent tenants — each
//! its own TCP session and episode — through a deterministic order
//! workload, and measures sustained throughput plus p50/p99 wall-clock
//! decision latency. Results are archived as
//! `target/experiments/BENCH_serve.json`, the serving counterpart of
//! `BENCH_table1.json`.
//!
//! The binary exits non-zero when the run is not trustworthy: any
//! protocol error, a lost/extra decision, an episode that fails to drain
//! to `METRICS`, or a non-finite latency quantile. CI runs it as the
//! server smoke gate.
//!
//! ```text
//! cargo run --release -p dpdp-bench --bin loadgen -- \
//!     --tenants 4 --orders 50 --threads 2
//! ```

use dpdp_bench::write_artifact;
use dpdp_server::{DecisionServer, ServeClient, ServerConfig, ServerMsg};
use std::net::SocketAddr;
use std::time::Instant;

const USAGE: &str = "\
options:
  --tenants N   concurrent tenant sessions (default 4)
  --orders N    orders per tenant (default 50)
  --threads N   server scoring pool width (default 2)
  --queue N     per-session command queue bound (default 64)
  --seed N      base seed; tenant i uses seed + i (default 7)
  --policy P    dispatch policy for every tenant (default baseline1)
  --addr A      drive an external server instead of spawning one in-process
  -h, --help    print this help";

fn fail_usage(msg: &str) -> ! {
    eprintln!("loadgen: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct LoadCli {
    tenants: usize,
    orders: usize,
    threads: usize,
    queue: usize,
    seed: u64,
    policy: String,
    addr: Option<String>,
}

fn parse_cli() -> LoadCli {
    let mut cli = LoadCli {
        tenants: 4,
        orders: 50,
        threads: 2,
        queue: 64,
        seed: 7,
        policy: "baseline1".to_string(),
        addr: None,
    };
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> usize {
        match it.next().and_then(|v| v.parse().ok()) {
            Some(v) if v >= 1 => v,
            _ => fail_usage(&format!("flag `{name}` needs a positive integer")),
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tenants" => cli.tenants = num(&mut it, "--tenants"),
            "--orders" => cli.orders = num(&mut it, "--orders"),
            "--threads" => cli.threads = num(&mut it, "--threads"),
            "--queue" => cli.queue = num(&mut it, "--queue"),
            "--seed" => cli.seed = num(&mut it, "--seed") as u64,
            "--policy" => match it.next() {
                Some(v) => cli.policy = v.clone(),
                None => fail_usage("flag `--policy` needs a value"),
            },
            "--addr" => match it.next() {
                Some(v) => cli.addr = Some(v.clone()),
                None => fail_usage("flag `--addr` needs a value"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail_usage(&format!("unknown flag `{other}`")),
        }
    }
    cli
}

/// One tenant's measured episode.
struct TenantOutcome {
    tenant: usize,
    latencies_ms: Vec<f64>,
    served: usize,
    rejected: usize,
    protocol_errors: usize,
}

/// Drives one tenant session: per order, send `ORDER` + a `FLUSH`
/// heartbeat one virtual second later (immediate buffering decides the
/// order at its creation instant once the heartbeat proves no earlier
/// event can arrive), then block until its `DECISION` comes back —
/// measuring the full wire round trip through the live episode.
fn run_tenant(addr: SocketAddr, tenant: usize, cli: &LoadCli) -> Result<TenantOutcome, String> {
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("tenant {tenant}: connect: {e}"))?;
    client
        .hello(
            &format!("tenant{tenant}"),
            "ring12",
            cli.seed + tenant as u64,
            &cli.policy,
            0.0,
        )
        .map_err(|e| format!("tenant {tenant}: handshake: {e}"))?;

    let mut outcome = TenantOutcome {
        tenant,
        latencies_ms: Vec::with_capacity(cli.orders),
        served: 0,
        rejected: 0,
        protocol_errors: 0,
    };
    for k in 0..cli.orders {
        // A deterministic tour of the ring's factories, staggered per
        // tenant so concurrent episodes are genuinely different.
        let pickup = 1 + ((k * 5 + tenant) % 12) as u32;
        let delivery = 1 + ((k * 5 + tenant + 4) % 12) as u32;
        let created_s = 8.0 * 3600.0 + 30.0 * k as f64;
        let deadline_s = created_s + 6.0 * 3600.0;
        let sent = Instant::now();
        client
            .order(pickup, delivery, 3.0, created_s, deadline_s)
            .map_err(|e| format!("tenant {tenant}: order {k}: {e}"))?;
        client
            .flush(created_s + 1.0)
            .map_err(|e| format!("tenant {tenant}: flush {k}: {e}"))?;
        loop {
            match client.next_msg() {
                Ok(Some(ServerMsg::Decision(d))) => {
                    if d.order.index() != k {
                        return Err(format!(
                            "tenant {tenant}: expected decision for order {k}, got {}",
                            d.order.index()
                        ));
                    }
                    outcome
                        .latencies_ms
                        .push(sent.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                Ok(Some(ServerMsg::Err { code, detail })) => {
                    eprintln!("loadgen: tenant {tenant}: ERR {code} {detail}");
                    outcome.protocol_errors += 1;
                }
                Ok(Some(_)) => continue, // EPOCH / DISRUPT narration
                Ok(None) => return Err(format!("tenant {tenant}: server hung up mid-episode")),
                Err(e) => return Err(format!("tenant {tenant}: read: {e}")),
            }
        }
    }
    client
        .drain()
        .map_err(|e| format!("tenant {tenant}: drain: {e}"))?;
    let episode = client
        .collect_episode()
        .map_err(|e| format!("tenant {tenant}: drain read: {e}"))?;
    outcome.protocol_errors += episode.errors.len();
    let metrics = episode
        .metrics
        .ok_or_else(|| format!("tenant {tenant}: episode ended without METRICS"))?;
    outcome.served = metrics.served;
    outcome.rejected = metrics.rejected;
    if metrics.served + metrics.rejected != cli.orders {
        return Err(format!(
            "tenant {tenant}: {} decisions for {} orders",
            metrics.served + metrics.rejected,
            cli.orders
        ));
    }
    Ok(outcome)
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let cli = parse_cli();
    let spawned = if cli.addr.is_none() {
        let server = DecisionServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: cli.threads,
                queue_depth: cli.queue,
            },
        )
        .and_then(DecisionServer::spawn)
        .unwrap_or_else(|e| {
            eprintln!("loadgen: cannot start in-process server: {e}");
            std::process::exit(1);
        });
        Some(server)
    } else {
        None
    };
    let addr: SocketAddr = match (&cli.addr, &spawned) {
        (Some(a), _) => a.parse().unwrap_or_else(|_| fail_usage("bad --addr")),
        (None, Some(server)) => server.addr(),
        (None, None) => unreachable!("either an external addr or a spawned server"),
    };

    let wall = Instant::now();
    let outcomes: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.tenants)
            .map(|tenant| {
                let cli = &cli;
                scope.spawn(move || run_tenant(addr, tenant, cli))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(msg)) => {
                    eprintln!("loadgen: {msg}");
                    std::process::exit(1);
                }
                Err(_) => {
                    eprintln!("loadgen: tenant thread panicked");
                    std::process::exit(1);
                }
            })
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    if let Some(server) = spawned {
        server.shutdown();
    }

    let mut all_ms: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ms.iter().copied())
        .collect();
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let protocol_errors: usize = outcomes.iter().map(|o| o.protocol_errors).sum();
    let total_orders = cli.tenants * cli.orders;
    let p50 = quantile_ms(&all_ms, 0.50);
    let p99 = quantile_ms(&all_ms, 0.99);
    let orders_per_sec = total_orders as f64 / wall_secs;

    let mut rows = String::new();
    for o in &outcomes {
        let mut ms = o.latencies_ms.clone();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"tenant\": {}, \"served\": {}, \"rejected\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            o.tenant,
            o.served,
            o.rejected,
            quantile_ms(&ms, 0.50),
            quantile_ms(&ms, 0.99),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"preset\": \"ring12\",\n  \"policy\": \"{}\",\n  \
         \"tenants\": {},\n  \"orders_per_tenant\": {},\n  \"threads\": {},\n  \
         \"queue_depth\": {},\n  \"seed\": {},\n  \"wall_secs\": {:.3},\n  \
         \"orders_per_sec\": {:.1},\n  \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \
         \"protocol_errors\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cli.policy,
        cli.tenants,
        cli.orders,
        cli.threads,
        cli.queue,
        cli.seed,
        wall_secs,
        orders_per_sec,
        p50,
        p99,
        protocol_errors,
        rows,
    );
    match write_artifact("BENCH_serve.json", &json) {
        Some(path) => println!("wrote {}", path.display()),
        None => {
            eprintln!("loadgen: cannot write BENCH_serve.json");
            std::process::exit(1);
        }
    }
    println!(
        "serve: {} tenants x {} orders in {wall_secs:.2}s -> {orders_per_sec:.0} orders/s, \
         p50 {p50:.2}ms, p99 {p99:.2}ms, {protocol_errors} protocol errors",
        cli.tenants, cli.orders,
    );

    // The CI gates: a smoke run must be error-free with finite tails.
    if protocol_errors > 0 {
        eprintln!("loadgen: FAIL: {protocol_errors} protocol errors");
        std::process::exit(1);
    }
    if !(p50.is_finite() && p99.is_finite()) {
        eprintln!("loadgen: FAIL: non-finite latency quantiles (p50 {p50}, p99 {p99})");
        std::process::exit(1);
    }
    if all_ms.len() != total_orders {
        eprintln!(
            "loadgen: FAIL: {} latency samples for {} orders",
            all_ms.len(),
            total_orders
        );
        std::process::exit(1);
    }
}
