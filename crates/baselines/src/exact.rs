//! Exact branch-and-bound solver for the **static** PDP relaxation.
//!
//! The paper compares its DRL dispatchers with the optimum of a three-index
//! MIP solved by Gurobi under the ideal assumption that all orders are known
//! a priori (Table I). This module is the repo's stand-in (DESIGN.md §2): a
//! depth-first branch-and-bound that assigns orders one by one, branching
//! over **every vehicle and every feasible insertion position pair**, with
//!
//! * an incumbent initialised by a best-insertion greedy pass,
//! * pruning by the metric lower bound (inserting stops into a route never
//!   shortens it under a metric distance, so the current partial cost is
//!   admissible),
//! * symmetry breaking over identical unused vehicles (only the first
//!   unused vehicle per depot is branched on),
//! * an optional wall-clock budget; like the paper's MIP, instances beyond
//!   ~8 orders become intractable and the solver reports a non-optimal
//!   incumbent when the budget runs out.

use dpdp_net::{Instance, TimePoint, VehicleId};
use dpdp_routing::{
    enumerate_insertions, sweep_insertions, Route, RoutePlanner, ScheduleCache, Stop, VehicleView,
};
use std::time::{Duration, Instant};

/// Solver limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactConfig {
    /// Abort the search after this wall-clock budget, returning the best
    /// incumbent found (`optimal = false`).
    pub time_limit: Option<Duration>,
    /// Abort after exploring this many search nodes.
    pub node_limit: Option<u64>,
}

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Per-vehicle routes (dense by vehicle id).
    pub routes: Vec<Route>,
    /// Number of used vehicles.
    pub nuv: usize,
    /// Total travel length, km.
    pub ttl: f64,
    /// Total cost `mu * NUV + delta * TTL`.
    pub total_cost: f64,
    /// Whether the search space was exhausted (true) or a limit was hit.
    pub optimal: bool,
    /// Search nodes explored.
    pub nodes_explored: u64,
}

/// The branch-and-bound solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSolver {
    /// Limits.
    pub config: ExactConfig,
}

struct Search<'a> {
    instance: &'a Instance,
    planner: RoutePlanner<'a>,
    deadline: Option<Instant>,
    node_limit: Option<u64>,
    nodes: u64,
    best_cost: f64,
    best_routes: Option<Vec<Route>>,
    truncated: bool,
}

impl ExactSolver {
    /// Unlimited exact solve (use only on tiny instances).
    pub fn new() -> Self {
        ExactSolver::default()
    }

    /// Solve with a wall-clock budget.
    pub fn with_time_limit(limit: Duration) -> Self {
        ExactSolver {
            config: ExactConfig {
                time_limit: Some(limit),
                node_limit: None,
            },
        }
    }

    /// Solves the static relaxation of `instance`: all orders visible from
    /// time zero, vehicles free to pre-position and wait. Returns `None` if
    /// not even the greedy pass can serve every order.
    pub fn solve(&self, instance: &Instance) -> Option<ExactSolution> {
        let planner = RoutePlanner::new(&instance.network, &instance.fleet, instance.orders());
        let mut search = Search {
            instance,
            planner,
            deadline: self.config.time_limit.map(|d| Instant::now() + d),
            node_limit: self.config.node_limit,
            nodes: 0,
            best_cost: f64::INFINITY,
            best_routes: None,
            truncated: false,
        };

        // Incumbent: greedy best-insertion (Baseline-1 style) on the static
        // problem.
        if let Some((routes, cost)) = search.greedy_incumbent() {
            search.best_cost = cost;
            search.best_routes = Some(routes);
        }

        let views = initial_views(instance);
        search.dfs(0, &views, 0.0);

        let routes = search.best_routes?;
        let (nuv, ttl) = cost_components(instance, &routes);
        Some(ExactSolution {
            total_cost: instance.fleet.total_cost(nuv, ttl),
            nuv,
            ttl,
            routes,
            optimal: !search.truncated,
            nodes_explored: search.nodes,
        })
    }
}

/// Fresh static views: every vehicle at its depot at time zero (the static
/// relaxation lets vehicles depart before order creation and wait on site).
fn initial_views(instance: &Instance) -> Vec<VehicleView> {
    instance
        .fleet
        .vehicles
        .iter()
        .map(|v| VehicleView::idle_at_depot(v.id, v.depot))
        .collect()
}

fn route_length(instance: &Instance, view: &VehicleView) -> f64 {
    view.route
        .length(&instance.network, view.anchor_node, view.depot)
}

fn cost_components(instance: &Instance, routes: &[Route]) -> (usize, f64) {
    let mut nuv = 0;
    let mut ttl = 0.0;
    for (k, route) in routes.iter().enumerate() {
        if route.is_empty() {
            continue;
        }
        nuv += 1;
        let depot = instance.fleet.vehicles[k].depot;
        ttl += route.length(&instance.network, depot, depot);
    }
    (nuv, ttl)
}

impl Search<'_> {
    fn out_of_budget(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.truncated = true;
                return true;
            }
        }
        if let Some(limit) = self.node_limit {
            if self.nodes >= limit {
                self.truncated = true;
                return true;
            }
        }
        false
    }

    fn greedy_incumbent(&self) -> Option<(Vec<Route>, f64)> {
        let instance = self.instance;
        let mut views = initial_views(instance);
        for order in instance.orders() {
            let mut best: Option<(usize, Route, f64)> = None;
            for (k, view) in views.iter().enumerate() {
                let plan = self.planner.plan(view, order);
                if let Some(b) = plan.best {
                    let delta = b.length() - plan.current_length;
                    if best.as_ref().is_none_or(|(_, _, bd)| delta < *bd) {
                        best = Some((k, b.candidate.route, delta));
                    }
                }
            }
            let (k, route, _) = best?;
            views[k].route = route;
            views[k].used = true;
        }
        let routes: Vec<Route> = views.into_iter().map(|v| v.route).collect();
        let (nuv, ttl) = cost_components(instance, &routes);
        Some((routes, instance.fleet.total_cost(nuv, ttl)))
    }

    /// Current partial cost: used-vehicle fixed costs plus current route
    /// lengths. Admissible because insertions never shorten a metric route.
    fn partial_cost(&self, views: &[VehicleView]) -> f64 {
        let fleet = &self.instance.fleet;
        let mut nuv = 0;
        let mut ttl = 0.0;
        for v in views {
            if !v.route.is_empty() {
                nuv += 1;
                ttl += route_length(self.instance, v);
            }
        }
        fleet.total_cost(nuv, ttl)
    }

    fn dfs(&mut self, order_idx: usize, views: &[VehicleView], _parent_cost: f64) {
        self.nodes += 1;
        if self.out_of_budget() {
            return;
        }
        let orders = self.instance.orders();
        if order_idx == orders.len() {
            let cost = self.partial_cost(views);
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best_routes = Some(views.iter().map(|v| v.route.clone()).collect());
            }
            return;
        }
        let order = &orders[order_idx];

        // Collect all (vehicle, candidate route, resulting bound) branches.
        // Candidates come from the incremental sweep — one schedule cache
        // per view, every position pair scored allocation-free, only the
        // branched routes materialized — instead of per-candidate
        // re-simulation (the naive path remains as the fallback oracle for
        // infeasible bases, which search states never produce).
        let fleet = &self.instance.fleet;
        let net = &self.instance.network;
        let pickup_stop = Stop::pickup(order.pickup, order.id);
        let delivery_stop = Stop::delivery(order.delivery, order.id);
        let partial = self.partial_cost(views);
        let mut branches: Vec<(usize, Route, f64)> = Vec::new();
        let mut seen_empty_depot: Vec<dpdp_net::NodeId> = Vec::new();
        for (k, view) in views.iter().enumerate() {
            if view.route.is_empty() {
                // Symmetry breaking: identical unused vehicles at the same
                // depot are interchangeable.
                if seen_empty_depot.contains(&view.depot) {
                    continue;
                }
                seen_empty_depot.push(view.depot);
            }
            // Bound after an insertion: other routes unchanged.
            let others: f64 = partial
                - if view.route.is_empty() {
                    0.0
                } else {
                    fleet.fixed_cost + fleet.unit_cost * route_length(self.instance, view)
                };
            let cache = ScheduleCache::build(view, net, fleet, orders);
            if cache.is_feasible() {
                let anchor = view.anchor_node;
                let depot = view.depot;
                sweep_insertions(&cache, view, order, net, fleet, orders, |cand| {
                    let route = view.route.with_insertion(
                        pickup_stop,
                        cand.pickup_pos,
                        delivery_stop,
                        cand.delivery_pos,
                    );
                    // Bound on the exact left-to-right length fold (not the
                    // delta-approximate `cand.length`): it is the same sum
                    // `partial_cost` computes at the child, so the bound
                    // stays admissible down to the last ulp, and the naive
                    // fallback branches below are ranked on equal footing.
                    let this =
                        fleet.fixed_cost + fleet.unit_cost * route.length(net, anchor, depot);
                    branches.push((k, route, others + this));
                });
            } else {
                for cand in enumerate_insertions(view, order, net, fleet, orders) {
                    let this = fleet.fixed_cost + fleet.unit_cost * cand.schedule.total_length;
                    branches.push((k, cand.route, others + this));
                }
            }
        }
        // Best-first child ordering tightens the incumbent early; total_cmp
        // keeps the order deterministic even for pathological non-finite
        // bounds.
        branches.sort_by(|a, b| a.2.total_cmp(&b.2));

        for (k, route, bound) in branches {
            if bound >= self.best_cost {
                continue;
            }
            let mut next = views.to_vec();
            next[k].route = route;
            next[k].used = true;
            self.dfs(order_idx + 1, &next, bound);
            if self.truncated {
                return;
            }
        }
    }
}

/// Evaluates a solved route set under the *dynamic* metrics, for apples-to-
/// apples comparison with simulated dispatchers: returns `(NUV, TTL, TC)`.
pub fn evaluate_routes(instance: &Instance, routes: &[Route]) -> (usize, f64, f64) {
    let (nuv, ttl) = cost_components(instance, routes);
    (nuv, ttl, instance.fleet.total_cost(nuv, ttl))
}

/// Checks that a route set serves every order exactly once and respects all
/// constraints (used by tests and the Table I harness as a solution audit).
pub fn validate_solution(instance: &Instance, routes: &[Route]) -> Result<(), String> {
    use dpdp_routing::simulate_schedule;
    let mut served = vec![0usize; instance.num_orders()];
    for (k, route) in routes.iter().enumerate() {
        let conf = &instance.fleet.vehicles[k];
        let view = VehicleView {
            vehicle: VehicleId::from_index(k),
            depot: conf.depot,
            anchor_node: conf.depot,
            anchor_time: TimePoint::ZERO,
            onboard: Vec::new(),
            route: route.clone(),
            used: !route.is_empty(),
        };
        simulate_schedule(
            &view,
            route,
            &instance.network,
            &instance.fleet,
            instance.orders(),
        )
        .map_err(|v| format!("vehicle {k}: {v}"))?;
        for stop in route.stops() {
            if stop.action.is_pickup() {
                served[stop.action.order().index()] += 1;
            }
        }
    }
    for (i, &n) in served.iter().enumerate() {
        if n != 1 {
            return Err(format!("order {i} served {n} times"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{Baseline1, Baseline2, Baseline3};
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
    };
    use dpdp_sim::{Dispatcher, Simulator};

    fn line_instance(num_vehicles: usize, orders: Vec<Order>) -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(30.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            num_vehicles,
            &[NodeId(0)],
            10.0,
            300.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    fn order(id: u32, p: u32, d: u32, q: f64, created_h: f64, deadline_h: f64) -> Order {
        Order::new(
            OrderId(id),
            NodeId(p),
            NodeId(d),
            q,
            dpdp_net::TimePoint::from_hours(created_h),
            dpdp_net::TimePoint::from_hours(deadline_h),
        )
        .unwrap()
    }

    #[test]
    fn single_order_optimum_is_direct_route() {
        let inst = line_instance(2, vec![order(0, 1, 2, 5.0, 8.0, 20.0)]);
        let sol = ExactSolver::new().solve(&inst).unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.nuv, 1);
        assert!((sol.ttl - 40.0).abs() < 1e-9);
        assert!((sol.total_cost - (300.0 + 80.0)).abs() < 1e-9);
        validate_solution(&inst, &sol.routes).unwrap();
    }

    #[test]
    fn hitchhiking_orders_share_one_vehicle() {
        // Two same-lane orders: optimum carries both on one vehicle.
        let inst = line_instance(
            3,
            vec![
                order(0, 1, 3, 4.0, 8.0, 20.0),
                order(1, 2, 3, 4.0, 9.0, 20.0),
            ],
        );
        let sol = ExactSolver::new().solve(&inst).unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.nuv, 1);
        // 0 -> 1 -> 2 -> 3 -> 0: 10+10+10+30 = 60 km.
        assert!((sol.ttl - 60.0).abs() < 1e-9, "ttl = {}", sol.ttl);
        validate_solution(&inst, &sol.routes).unwrap();
    }

    #[test]
    fn capacity_forces_two_vehicles_in_optimum() {
        // Capacity (8+8 > 10) forbids carrying both, and the 8:15 deadlines
        // rule out serving them back to back (second delivery would land at
        // 8:30), even with pre-positioning. Two vehicles are optimal.
        let inst = line_instance(
            3,
            vec![
                order(0, 1, 2, 8.0, 8.0, 8.25),
                order(1, 1, 2, 8.0, 8.0, 8.25),
            ],
        );
        let sol = ExactSolver::new().solve(&inst).unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.nuv, 2);
        validate_solution(&inst, &sol.routes).unwrap();
    }

    #[test]
    fn exact_beats_or_matches_every_baseline() {
        // A mixed 5-order instance.
        let orders = vec![
            order(0, 1, 3, 3.0, 8.0, 20.0),
            order(1, 2, 1, 4.0, 8.5, 20.0),
            order(2, 3, 2, 2.0, 9.0, 20.0),
            order(3, 1, 2, 5.0, 9.5, 20.0),
            order(4, 2, 3, 3.0, 10.0, 20.0),
        ];
        let inst = line_instance(3, orders);
        let sol = ExactSolver::new().solve(&inst).unwrap();
        assert!(sol.optimal);
        validate_solution(&inst, &sol.routes).unwrap();
        for d in [
            &mut Baseline1 as &mut dyn Dispatcher,
            &mut Baseline2,
            &mut Baseline3::default(),
        ] {
            let r = Simulator::builder(&inst).build().unwrap().run(d);
            assert_eq!(r.metrics.served, 5);
            assert!(
                sol.total_cost <= r.metrics.total_cost + 1e-9,
                "exact {} should not exceed {} ({})",
                sol.total_cost,
                d.name(),
                r.metrics.total_cost
            );
        }
    }

    #[test]
    fn node_limit_returns_incumbent_non_optimal() {
        let orders = (0..6)
            .map(|i| order(i, 1 + (i % 3), 1 + ((i + 1) % 3), 2.0, 8.0, 23.0))
            .collect();
        let inst = line_instance(3, orders);
        let solver = ExactSolver {
            config: ExactConfig {
                time_limit: None,
                node_limit: Some(5),
            },
        };
        let sol = solver.solve(&inst).unwrap();
        assert!(!sol.optimal);
        validate_solution(&inst, &sol.routes).unwrap();
        // The incumbent is the greedy solution or better.
        assert!(sol.total_cost.is_finite());
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Deadline impossible for everyone.
        let inst = line_instance(2, vec![order(0, 1, 2, 5.0, 8.0, 8.01)]);
        assert!(ExactSolver::new().solve(&inst).is_none());
    }

    #[test]
    fn validate_solution_catches_unserved_and_double_serves() {
        let inst = line_instance(2, vec![order(0, 1, 2, 5.0, 8.0, 20.0)]);
        let empty = vec![Route::empty(), Route::empty()];
        assert!(validate_solution(&inst, &empty).is_err());
    }
}
