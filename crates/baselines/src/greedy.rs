//! The three greedy insertion baselines (Section V-A).
//!
//! Baselines 1 and 2 are *batch-native*: their `dispatch_batch` scores the
//! epoch's candidate `(order, vehicle)` cells once against the shared
//! snapshot via [`DecisionBatch::map_candidate_plans`] and then commits
//! orders sequentially, rescoring only the column of the vehicle that just
//! accepted (the batch's plan delta, read back cell-by-cell through
//! [`DecisionBatch::with_plan`]). This is outcome-identical to the legacy
//! per-order path for any thread count — the parity tests below and in
//! `tests/batch_parity.rs` run both and compare `EpisodeResult`s — but
//! does the scoring work once per epoch instead of once per order.
//!
//! Under sharded dispatch (`SimulatorBuilder::sharding`) the candidate
//! rows carry only the cells the shard-local sweeps actually evaluated:
//! cross-shard pairs the exact geometric bound proves infeasible never
//! appear, and since an absent cell is `best: None` it could never win an
//! argmin anyway — same argmins, same episodes, with per-epoch policy work
//! proportional to the candidate count instead of `B x K`
//! (`tests/batch_parity.rs` asserts the shard-count invariance for all
//! three baselines).

use dpdp_net::{Instance, VehicleId};
use dpdp_routing::PlannerOutput;
use dpdp_sim::{Decision, DecisionBatch, DispatchContext, Dispatcher};

fn argmin_by<F: Fn(usize) -> f64>(ctx: &DispatchContext<'_>, key: F) -> Option<VehicleId> {
    let mut best: Option<(usize, f64)> = None;
    for k in 0..ctx.plans.len() {
        if !ctx.plans[k].feasible() {
            continue;
        }
        let v = key(k);
        if best.is_none_or(|(_, b)| v < b) {
            best = Some((k, v));
        }
    }
    best.map(|(k, _)| VehicleId::from_index(k))
}

/// Argmin over a candidate row (ascending vehicle order, strict `<`):
/// identical winner and tie-breaks to a dense scan, because every vehicle
/// absent from the row is infeasible and could never win.
fn argmin_scores(scores: &[(u32, Option<f64>)]) -> Option<VehicleId> {
    let mut best: Option<(u32, f64)> = None;
    for &(k, s) in scores {
        if let Some(v) = s {
            if best.is_none_or(|(_, b)| v < b) {
                best = Some((k, v));
            }
        }
    }
    best.map(|(k, _)| VehicleId::from_index(k as usize))
}

/// Writes vehicle `k`'s refreshed score into a sorted candidate row,
/// inserting the cell when the initial sweep had pruned it (an accepted
/// vehicle's plans can turn feasible once it starts moving).
fn upsert_score(row: &mut Vec<(u32, Option<f64>)>, k: u32, score: Option<f64>) {
    match row.binary_search_by_key(&k, |e| e.0) {
        Ok(p) => row[p].1 = score,
        Err(p) => row.insert(p, (k, score)),
    }
}

/// Batch-native greedy dispatch: score every `(order, vehicle)` pair once
/// from the epoch snapshot (in parallel across the batch's thread pool),
/// commit orders in creation order, and refresh only the accepting
/// vehicle's column for the orders still undecided.
///
/// `score` maps a feasible plan to its (lower-is-better) key and an
/// infeasible one to `None`.
fn greedy_batch(
    batch: &DecisionBatch<'_>,
    score: impl Fn(&PlannerOutput) -> Option<f64> + Sync,
) -> Vec<Decision> {
    let b = batch.len();
    let mut scores: Vec<Vec<(u32, Option<f64>)>> =
        batch.map_candidate_plans(|_, _, plan| score(plan));
    let mut out = Vec::with_capacity(b);
    for i in 0..b {
        let decision = batch.resolve(i, argmin_scores(&scores[i]));
        if let Some(k) = decision.vehicle {
            for (j, row) in scores.iter_mut().enumerate().skip(i + 1) {
                upsert_score(row, k.index() as u32, batch.with_plan(j, k, &score));
            }
        }
        out.push(decision);
    }
    out
}

/// Baseline 1 (Mitrovic-Minic & Laporte): the vehicle with the **shortest
/// incremental route length** after accepting the order. This is the
/// strategy deployed in the paper's UAT environment.
#[derive(Debug, Default, Clone)]
pub struct Baseline1;

impl Dispatcher for Baseline1 {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        argmin_by(ctx, |k| {
            ctx.plans[k]
                .incremental_length()
                .expect("filtered to feasible")
        })
    }

    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        greedy_batch(batch, PlannerOutput::incremental_length)
    }

    fn name(&self) -> &str {
        "Baseline1"
    }
}

/// Baseline 2: the vehicle with the **shortest total route length** after
/// accepting the order.
#[derive(Debug, Default, Clone)]
pub struct Baseline2;

impl Dispatcher for Baseline2 {
    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        argmin_by(ctx, |k| {
            ctx.plans[k].best_length().expect("filtered to feasible")
        })
    }

    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        greedy_batch(batch, PlannerOutput::best_length)
    }

    fn name(&self) -> &str {
        "Baseline2"
    }
}

/// Baseline 3 (adapted from Grandinetti et al.): the vehicle with the
/// **largest number of accepted orders**, reducing fixed cost by minimising
/// the number of used vehicles. Ties break toward the smaller incremental
/// length.
#[derive(Debug, Default, Clone)]
pub struct Baseline3 {
    accepted: Vec<usize>,
}

impl Dispatcher for Baseline3 {
    fn begin_episode(&mut self, instance: &Instance) {
        self.accepted = vec![0; instance.num_vehicles()];
    }

    fn dispatch(&mut self, ctx: &DispatchContext<'_>) -> Option<VehicleId> {
        if self.accepted.len() != ctx.plans.len() {
            // Defensive: a dispatch outside an episode bracket.
            self.accepted = vec![0; ctx.plans.len()];
        }
        let mut best: Option<(usize, usize, f64)> = None; // (k, count, delta)
        for k in 0..ctx.plans.len() {
            if !ctx.plans[k].feasible() {
                continue;
            }
            let count = self.accepted[k];
            let delta = ctx.plans[k]
                .incremental_length()
                .expect("filtered to feasible");
            let better = match best {
                None => true,
                Some((_, bc, bd)) => count > bc || (count == bc && delta < bd),
            };
            if better {
                best = Some((k, count, delta));
            }
        }
        let (k, _, _) = best?;
        self.accepted[k] += 1;
        Some(VehicleId::from_index(k))
    }

    fn dispatch_batch(&mut self, batch: &DecisionBatch<'_>) -> Vec<Decision> {
        if self.accepted.len() != batch.num_vehicles() {
            // Defensive: a dispatch outside an episode bracket.
            self.accepted = vec![0; batch.num_vehicles()];
        }
        let b = batch.len();
        let mut deltas: Vec<Vec<(u32, Option<f64>)>> =
            batch.map_candidate_plans(|_, _, plan| plan.incremental_length());
        let mut out = Vec::with_capacity(b);
        for i in 0..b {
            let mut best: Option<(u32, usize, f64)> = None; // (k, count, delta)
            for &(k, d) in &deltas[i] {
                if let Some(delta) = d {
                    let count = self.accepted[k as usize];
                    let better = match best {
                        None => true,
                        Some((_, bc, bd)) => count > bc || (count == bc && delta < bd),
                    };
                    if better {
                        best = Some((k, count, delta));
                    }
                }
            }
            let decision =
                batch.resolve(i, best.map(|(k, _, _)| VehicleId::from_index(k as usize)));
            if let Some(k) = decision.vehicle {
                // Acceptance only perturbs the accepting vehicle's column:
                // its count and its plans for the remaining orders.
                self.accepted[k.index()] += 1;
                for (j, row) in deltas.iter_mut().enumerate().skip(i + 1) {
                    let fresh = batch.with_plan(j, k, |p| p.incremental_length());
                    upsert_score(row, k.index() as u32, fresh);
                }
            }
            out.push(decision);
        }
        out
    }

    fn name(&self) -> &str {
        "Baseline3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpdp_net::{
        FleetConfig, Instance, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork,
        TimeDelta, TimePoint,
    };
    use dpdp_sim::Simulator;

    /// Two far-apart lanes: orders alternate between them. Baseline 3
    /// crams everything onto one vehicle (fewest vehicles, long detours),
    /// Baseline 1 splits by marginal distance.
    fn instance() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(0.0, 50.0)),
            Node::factory(NodeId(4), Point::new(0.0, 60.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(4, &[NodeId(0)], 50.0, 300.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                5.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(23.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(3),
                NodeId(4),
                5.0,
                TimePoint::from_hours(8.5),
                TimePoint::from_hours(23.0),
            )
            .unwrap(),
            Order::new(
                OrderId(2),
                NodeId(1),
                NodeId(2),
                5.0,
                TimePoint::from_hours(9.0),
                TimePoint::from_hours(23.0),
            )
            .unwrap(),
        ];
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    #[test]
    fn baseline1_minimises_marginal_distance() {
        let inst = instance();
        let r = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline1);
        assert_eq!(r.metrics.served, 3);
        // B1 never pays more than a fresh vehicle would: an empty vehicle is
        // always available in this instance, so each order's incremental
        // length is bounded by its own depot -> pickup -> delivery -> depot
        // loop.
        for a in &r.assignments {
            let o = &inst.orders()[a.order.index()];
            let fresh = inst.network.distance(NodeId(0), o.pickup)
                + inst.network.distance(o.pickup, o.delivery)
                + inst.network.distance(o.delivery, NodeId(0));
            assert!(
                a.incremental_length() <= fresh + 1e-9,
                "order {} cost {} km, more than a fresh vehicle's {fresh}",
                a.order,
                a.incremental_length()
            );
        }
    }

    #[test]
    fn baseline1_routes_to_the_nearest_depot_vehicle() {
        // Two depots far apart; the order sits next to depot 1, so the
        // minimum-incremental-length vehicle is the one stationed there.
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::depot(NodeId(1), Point::new(100.0, 0.0)),
            Node::factory(NodeId(2), Point::new(90.0, 0.0)),
            Node::factory(NodeId(3), Point::new(95.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet = FleetConfig::homogeneous(
            2,
            &[NodeId(0), NodeId(1)],
            10.0,
            300.0,
            2.0,
            60.0,
            TimeDelta::ZERO,
        )
        .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(2),
            NodeId(3),
            5.0,
            TimePoint::from_hours(8.0),
            TimePoint::from_hours(20.0),
        )
        .unwrap()];
        let inst = Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap();
        let r = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline1);
        assert_eq!(
            r.assignments[0].vehicle,
            Some(dpdp_net::VehicleId(1)),
            "vehicle at the nearby depot should win"
        );
        // 100 -> 90 -> 95 -> 100: 10 + 5 + 5 = 20 km.
        assert!((r.metrics.ttl - 20.0).abs() < 1e-9);
    }

    #[test]
    fn baseline3_uses_fewest_vehicles() {
        let inst = instance();
        let r3 = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline3::default());
        let r1 = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline1);
        assert_eq!(r3.metrics.served, 3);
        assert!(
            r3.metrics.nuv <= r1.metrics.nuv,
            "B3 NUV {} should not exceed B1 NUV {}",
            r3.metrics.nuv,
            r1.metrics.nuv
        );
        // And pays for it in travel length.
        assert!(r3.metrics.ttl >= r1.metrics.ttl);
    }

    #[test]
    fn baseline2_serves_everything() {
        let inst = instance();
        let r = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline2);
        assert_eq!(r.metrics.served, 3);
        // Baseline 2 favours short *total* routes, so it spreads orders over
        // fresh (empty) vehicles whenever that keeps routes short.
        assert!(r.metrics.nuv >= 2);
    }

    #[test]
    fn all_baselines_reject_impossible_orders() {
        let mut inst = instance();
        // Shrink every deadline to make all orders impossible.
        let orders: Vec<Order> = inst
            .orders()
            .iter()
            .map(|o| {
                Order::new(
                    o.id,
                    o.pickup,
                    o.delivery,
                    o.quantity,
                    o.created,
                    o.created + TimeDelta::from_seconds(1.0),
                )
                .unwrap()
            })
            .collect();
        inst = Instance::new(inst.network.clone(), inst.fleet.clone(), inst.grid, orders).unwrap();
        for d in [
            &mut Baseline1 as &mut dyn Dispatcher,
            &mut Baseline2,
            &mut Baseline3::default(),
        ] {
            let r = Simulator::builder(&inst).build().unwrap().run(d);
            assert_eq!(r.metrics.served, 0);
            assert_eq!(r.metrics.nuv, 0);
        }
    }
}
