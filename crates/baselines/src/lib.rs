//! Non-learned comparators from the paper's evaluation (Section V-A):
//!
//! * [`Baseline1`] — dispatch to the vehicle with the smallest *incremental*
//!   route length (the strategy deployed in the paper's UAT environment);
//! * [`Baseline2`] — dispatch to the vehicle with the smallest *total* route
//!   length after acceptance;
//! * [`Baseline3`] — dispatch to the vehicle with the most accepted orders
//!   (minimising the number of used vehicles);
//! * [`ExactSolver`] — a branch-and-bound exact solver for the static PDP
//!   relaxation, standing in for the paper's Gurobi MIP (see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod greedy;
pub mod improve;

pub use exact::{ExactConfig, ExactSolution, ExactSolver};
pub use greedy::{Baseline1, Baseline2, Baseline3};
pub use improve::{relocate_improvement, Improvement};
