//! Local-search post-optimisation of static route sets.
//!
//! The paper's related work (Mitrovic-Minic & Laporte \[4\]; Gendreau et
//! al. \[5\]) pairs cheapest-insertion construction with an improvement
//! phase. This module implements the classic **relocate** neighbourhood on
//! top of any complete route set: repeatedly remove one order (its pickup
//! and delivery stops) from its route and reinsert it at the globally
//! cheapest feasible position — possibly on another vehicle — until no move
//! improves the total cost. Emptied vehicles shed their fixed cost, so the
//! move reduces NUV as well as travel length.

use crate::exact::evaluate_routes;
use dpdp_net::{Instance, OrderId, TimePoint, VehicleId};
use dpdp_routing::{Route, RoutePlanner, ScheduleCache, StopAction, VehicleView};

/// Outcome of a local-search improvement run.
#[derive(Debug, Clone)]
pub struct Improvement {
    /// The improved route set.
    pub routes: Vec<Route>,
    /// Cost before.
    pub initial_cost: f64,
    /// Cost after.
    pub final_cost: f64,
    /// Number of applied relocate moves.
    pub moves: usize,
}

impl Improvement {
    /// Relative improvement in `[0, 1)`.
    pub fn gain(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            0.0
        } else {
            (self.initial_cost - self.final_cost) / self.initial_cost
        }
    }
}

fn fresh_view(instance: &Instance, k: usize, route: Route) -> VehicleView {
    let conf = &instance.fleet.vehicles[k];
    VehicleView {
        vehicle: VehicleId::from_index(k),
        depot: conf.depot,
        anchor_node: conf.depot,
        anchor_time: TimePoint::ZERO,
        onboard: Vec::new(),
        used: !route.is_empty(),
        route,
    }
}

/// Removes every stop of `order` from `route`, returning the pruned route.
fn without_order(route: &Route, order: OrderId) -> Route {
    Route::from_stops(
        route
            .stops()
            .iter()
            .filter(|s| s.action.order() != order)
            .copied()
            .collect(),
    )
}

/// Distinct orders carried by a route.
fn orders_of(route: &Route) -> Vec<OrderId> {
    route
        .stops()
        .iter()
        .filter_map(|s| match s.action {
            StopAction::Pickup(o) => Some(o),
            StopAction::Delivery(_) => None,
        })
        .collect()
}

/// Runs relocate local search to a local optimum (or `max_moves`).
///
/// The input routes must form a complete feasible static solution (every
/// order served once); the output preserves that invariant — every applied
/// move reinserts the relocated order through the feasibility-checked
/// [`dpdp_routing::best_insertion`].
pub fn relocate_improvement(
    instance: &Instance,
    routes: Vec<Route>,
    max_moves: usize,
) -> Improvement {
    let (_, _, initial_cost) = evaluate_routes(instance, &routes);
    let mut routes = routes;
    let mut moves = 0;
    let fleet = &instance.fleet;
    let planner = RoutePlanner::new(&instance.network, fleet, instance.orders());

    'outer: loop {
        if moves >= max_moves {
            break;
        }
        let (_, _, current) = evaluate_routes(instance, &routes);
        // Destination views and their prefix/suffix schedule caches are
        // built once per pass (routes only change between passes), so the
        // (order x destination) scan below reinserts through O(n²)
        // cache-backed sweeps instead of rebuilding per pair.
        let dst_views: Vec<VehicleView> = routes
            .iter()
            .enumerate()
            .map(|(k, r)| fresh_view(instance, k, r.clone()))
            .collect();
        let dst_caches: Vec<ScheduleCache> = dst_views.iter().map(|v| planner.cache(v)).collect();
        // Try every (order, target vehicle) relocate; apply the best
        // strictly-improving one (steepest descent).
        let mut best: Option<(f64, usize, usize, Route, Route)> = None;
        for src in 0..routes.len() {
            for order_id in orders_of(&routes[src]) {
                let pruned = without_order(&routes[src], order_id);
                let order = instance.order(order_id);
                for dst in 0..routes.len() {
                    let plan = if dst == src {
                        // Removing the order changed this route: plan
                        // against a fresh view of the pruned route.
                        planner.plan(&fresh_view(instance, dst, pruned.clone()), order)
                    } else {
                        planner.plan_cached(&dst_caches[dst], &dst_views[dst], order)
                    };
                    let Some(ins) = plan.best else {
                        continue;
                    };
                    // Cost delta: recompute affected routes only.
                    let mut candidate = routes.clone();
                    candidate[src] = pruned.clone();
                    candidate[dst] = ins.candidate.route.clone();
                    let (_, _, cost) = evaluate_routes(instance, &candidate);
                    if cost < current - 1e-9 && best.as_ref().is_none_or(|(b, ..)| cost < *b) {
                        best = Some((cost, src, dst, pruned.clone(), ins.candidate.route.clone()));
                    }
                }
            }
        }
        match best {
            Some((_, src, dst, pruned, inserted)) => {
                routes[src] = pruned;
                routes[dst] = inserted;
                moves += 1;
            }
            None => break 'outer,
        }
    }

    let (_, _, final_cost) = evaluate_routes(instance, &routes);
    Improvement {
        routes,
        initial_cost,
        final_cost,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{validate_solution, ExactSolver};
    use crate::greedy::Baseline3;
    use dpdp_net::{
        FleetConfig, IntervalGrid, Node, NodeId, Order, OrderId, Point, RoadNetwork, TimeDelta,
    };
    use dpdp_routing::{best_insertion, Stop};
    use dpdp_sim::Simulator;

    fn instance() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(10.0, 0.0)),
            Node::factory(NodeId(2), Point::new(20.0, 0.0)),
            Node::factory(NodeId(3), Point::new(0.0, 15.0)),
            Node::factory(NodeId(4), Point::new(0.0, 25.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(3, &[NodeId(0)], 10.0, 300.0, 2.0, 60.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                3.0,
                TimePoint::ZERO,
                TimePoint::from_hours(20.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(3),
                NodeId(4),
                3.0,
                TimePoint::ZERO,
                TimePoint::from_hours(20.0),
            )
            .unwrap(),
            Order::new(
                OrderId(2),
                NodeId(1),
                NodeId(2),
                3.0,
                TimePoint::ZERO,
                TimePoint::from_hours(20.0),
            )
            .unwrap(),
        ];
        Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    /// A deliberately bad solution: each order on its own vehicle.
    fn one_per_vehicle(inst: &Instance) -> Vec<Route> {
        inst.orders()
            .iter()
            .enumerate()
            .map(|(k, o)| {
                let _ = k;
                Route::from_stops(vec![
                    Stop::pickup(o.pickup, o.id),
                    Stop::delivery(o.delivery, o.id),
                ])
            })
            .collect()
    }

    #[test]
    fn relocate_merges_same_lane_orders() {
        let inst = instance();
        let start = one_per_vehicle(&inst);
        let imp = relocate_improvement(&inst, start, 100);
        assert!(imp.final_cost < imp.initial_cost);
        assert!(imp.moves >= 1);
        validate_solution(&inst, &imp.routes).unwrap();
        // The fixed cost (300) dwarfs any detour here, so the local search
        // consolidates everything onto a single vehicle — which matches the
        // exact optimum.
        let (nuv, _, _) = evaluate_routes(&inst, &imp.routes);
        assert_eq!(nuv, 1);
        let exact = ExactSolver::new().solve(&inst).unwrap();
        assert!(imp.final_cost >= exact.total_cost - 1e-9);
    }

    #[test]
    fn relocate_never_worsens_and_respects_budget() {
        let inst = instance();
        // Start from the exact optimum: no move can improve it.
        let sol = ExactSolver::new().solve(&inst).unwrap();
        let imp = relocate_improvement(&inst, sol.routes.clone(), 100);
        assert_eq!(imp.moves, 0);
        assert!((imp.final_cost - sol.total_cost).abs() < 1e-9);
        // Zero budget: no moves applied.
        let imp = relocate_improvement(&inst, one_per_vehicle(&inst), 0);
        assert_eq!(imp.moves, 0);
        assert!((imp.gain()).abs() < 1e-12);
    }

    #[test]
    fn improves_baseline3_static_solution() {
        // Replay Baseline 3 dynamically, then post-optimise its final routes
        // as a static solution: cost must not increase, and usually drops.
        let inst = instance();
        let result = Simulator::builder(&inst)
            .build()
            .unwrap()
            .run(&mut Baseline3::default());
        assert_eq!(result.metrics.served, 3);
        // Rebuild the static route set from the assignment log.
        let mut routes = vec![Route::empty(); inst.num_vehicles()];
        for a in &result.assignments {
            if let Some(v) = a.vehicle {
                let o = inst.order(a.order);
                let view = fresh_view(&inst, v.index(), routes[v.index()].clone());
                let ins = best_insertion(&view, o, &inst.network, &inst.fleet, inst.orders())
                    .expect("statically feasible");
                routes[v.index()] = ins.candidate.route;
            }
        }
        validate_solution(&inst, &routes).unwrap();
        let imp = relocate_improvement(&inst, routes, 100);
        assert!(imp.final_cost <= imp.initial_cost + 1e-9);
        validate_solution(&inst, &imp.routes).unwrap();
    }
}
