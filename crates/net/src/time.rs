//! Simulation time.
//!
//! All times are expressed in **seconds since the start of the episode**
//! (a 24-hour day in the paper). [`TimePoint`] is an absolute instant,
//! [`TimeDelta`] a signed duration, and [`IntervalGrid`] discretises the day
//! into `T` equal-duration intervals exactly as Definition 1 of the paper
//! (144 ten-minute intervals for a day).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Number of seconds in a 24-hour day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// An absolute instant, in seconds since the start of the episode.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TimePoint(f64);

/// A signed duration, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TimeDelta(f64);

impl TimePoint {
    /// The start of the episode (midnight).
    pub const ZERO: TimePoint = TimePoint(0.0);

    /// Creates a time point from seconds since episode start.
    ///
    /// # Panics
    /// Panics if `seconds` is not finite.
    #[inline]
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "TimePoint must be finite");
        TimePoint(seconds)
    }

    /// Creates a time point from hours since episode start.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_seconds(hours * 3600.0)
    }

    /// Seconds since episode start.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Hours since episode start.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: TimePoint) -> TimePoint {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: TimePoint) -> TimePoint {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl TimeDelta {
    /// A zero-length duration.
    pub const ZERO: TimeDelta = TimeDelta(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is not finite.
    #[inline]
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "TimeDelta must be finite");
        TimeDelta(seconds)
    }

    /// Creates a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::from_seconds(minutes * 60.0)
    }

    /// Creates a duration from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_seconds(hours * 3600.0)
    }

    /// Duration in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Whether this duration is non-negative.
    #[inline]
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }
}

impl Add<TimeDelta> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimePoint {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimePoint) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Sub<TimeDelta> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Mul<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.max(0.0) as u64;
        write!(
            f,
            "{:02}:{:02}:{:02}",
            total / 3600,
            (total % 3600) / 60,
            total % 60
        )
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

/// A half-open service window `[earliest, latest)` for an order: the earliest
/// pickup time and the latest delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Earliest time a vehicle may pick up the cargo (order creation time).
    pub earliest: TimePoint,
    /// Latest time the cargo must be delivered by.
    pub latest: TimePoint,
}

impl TimeWindow {
    /// Creates a window, validating `earliest <= latest`.
    pub fn new(earliest: TimePoint, latest: TimePoint) -> Result<Self, crate::NetError> {
        if earliest > latest {
            return Err(crate::NetError::InvalidTimeWindow {
                earliest: earliest.seconds(),
                latest: latest.seconds(),
            });
        }
        Ok(TimeWindow { earliest, latest })
    }

    /// Window length.
    #[inline]
    pub fn length(&self) -> TimeDelta {
        self.latest - self.earliest
    }

    /// Whether `t` lies within the window (inclusive on both ends).
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        t >= self.earliest && t <= self.latest
    }
}

/// Discretisation of the episode horizon into `T` equal-duration intervals
/// (Definition 1 of the paper; the paper uses `T = 144` ten-minute intervals
/// over a 24-hour day).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalGrid {
    horizon: f64,
    num_intervals: usize,
}

impl IntervalGrid {
    /// Creates a grid over `horizon` seconds split into `num_intervals`
    /// left-closed right-open intervals.
    ///
    /// # Panics
    /// Panics if `num_intervals == 0` or `horizon` is not strictly positive.
    pub fn new(horizon: TimeDelta, num_intervals: usize) -> Self {
        assert!(
            num_intervals > 0,
            "IntervalGrid needs at least one interval"
        );
        assert!(
            horizon.seconds() > 0.0,
            "IntervalGrid horizon must be positive"
        );
        IntervalGrid {
            horizon: horizon.seconds(),
            num_intervals,
        }
    }

    /// The paper's default grid: a 24-hour day in 144 ten-minute intervals.
    pub fn paper_default() -> Self {
        Self::new(TimeDelta::from_seconds(SECONDS_PER_DAY), 144)
    }

    /// Number of intervals `T`.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    /// Duration of one interval.
    #[inline]
    pub fn interval_length(&self) -> TimeDelta {
        TimeDelta::from_seconds(self.horizon / self.num_intervals as f64)
    }

    /// Total horizon covered by the grid.
    #[inline]
    pub fn horizon(&self) -> TimeDelta {
        TimeDelta::from_seconds(self.horizon)
    }

    /// Maps a time point to its interval index, clamping times outside the
    /// horizon to the first/last interval. Intervals are left-closed,
    /// right-open, matching Definition 1.
    #[inline]
    pub fn interval_of(&self, t: TimePoint) -> usize {
        if t.seconds() <= 0.0 {
            return 0;
        }
        // The 1e-9-interval nudge compensates floating-point undershoot for
        // times computed as exact interval boundaries (k * horizon / T),
        // so that `interval_of(interval_start(k)) == k` for every k.
        let idx = (t.seconds() / self.horizon * self.num_intervals as f64 + 1e-9) as usize;
        idx.min(self.num_intervals - 1)
    }

    /// The start time of interval `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= num_intervals`.
    #[inline]
    pub fn interval_start(&self, idx: usize) -> TimePoint {
        assert!(idx < self.num_intervals, "interval index out of range");
        TimePoint::from_seconds(idx as f64 * self.horizon / self.num_intervals as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = TimePoint::from_hours(10.0);
        let d = TimeDelta::from_minutes(30.0);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d + d, TimeDelta::from_hours(1.0));
        assert_eq!(d * 2.0, TimeDelta::from_hours(1.0));
        assert_eq!(TimeDelta::from_hours(1.0) / 2.0, d);
    }

    #[test]
    fn display_formats_clock_time() {
        assert_eq!(TimePoint::from_hours(10.5).to_string(), "10:30:00");
        assert_eq!(TimePoint::ZERO.to_string(), "00:00:00");
    }

    #[test]
    fn window_validation() {
        let a = TimePoint::from_hours(1.0);
        let b = TimePoint::from_hours(2.0);
        assert!(TimeWindow::new(a, b).is_ok());
        assert!(TimeWindow::new(b, a).is_err());
        let w = TimeWindow::new(a, b).unwrap();
        assert!(w.contains(TimePoint::from_hours(1.5)));
        assert!(w.contains(a));
        assert!(w.contains(b));
        assert!(!w.contains(TimePoint::from_hours(2.5)));
        assert_eq!(w.length(), TimeDelta::from_hours(1.0));
    }

    #[test]
    fn paper_grid_has_144_ten_minute_intervals() {
        let g = IntervalGrid::paper_default();
        assert_eq!(g.num_intervals(), 144);
        assert_eq!(g.interval_length(), TimeDelta::from_minutes(10.0));
    }

    #[test]
    fn interval_mapping_is_left_closed_right_open() {
        let g = IntervalGrid::paper_default();
        assert_eq!(g.interval_of(TimePoint::ZERO), 0);
        assert_eq!(g.interval_of(TimePoint::from_minutes_for_test(9.999)), 0);
        assert_eq!(g.interval_of(TimePoint::from_minutes_for_test(10.0)), 1);
        // Times at or past the horizon clamp to the last interval.
        assert_eq!(g.interval_of(TimePoint::from_hours(24.0)), 143);
        assert_eq!(g.interval_of(TimePoint::from_hours(30.0)), 143);
        // Negative times clamp to the first interval.
        assert_eq!(g.interval_of(TimePoint::from_seconds(-5.0)), 0);
    }

    #[test]
    fn interval_start_matches_interval_of() {
        let g = IntervalGrid::new(TimeDelta::from_hours(10.0), 20);
        for idx in 0..20 {
            assert_eq!(g.interval_of(g.interval_start(idx)), idx);
        }
    }

    impl TimePoint {
        fn from_minutes_for_test(m: f64) -> TimePoint {
            TimePoint::from_seconds(m * 60.0)
        }
    }

    #[test]
    #[should_panic]
    fn nonfinite_timepoint_panics() {
        let _ = TimePoint::from_seconds(f64::NAN);
    }
}
