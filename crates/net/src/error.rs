//! Error type for instance construction and validation.

use crate::ids::{NodeId, OrderId, VehicleId};
use std::fmt;

/// Errors raised while building or validating problem data.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A time window had `earliest > latest`.
    InvalidTimeWindow {
        /// Earliest time in seconds.
        earliest: f64,
        /// Latest time in seconds.
        latest: f64,
    },
    /// A node id referenced a node outside the network.
    UnknownNode(NodeId),
    /// An order referenced an unknown node or carried invalid data.
    InvalidOrder {
        /// The offending order.
        order: OrderId,
        /// Human-readable reason.
        reason: String,
    },
    /// A vehicle configuration was invalid (e.g. non-depot start node).
    InvalidVehicle {
        /// The offending vehicle.
        vehicle: VehicleId,
        /// Human-readable reason.
        reason: String,
    },
    /// The distance matrix was malformed.
    InvalidDistanceMatrix(String),
    /// A fleet-level parameter was invalid.
    InvalidFleet(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidTimeWindow { earliest, latest } => write!(
                f,
                "invalid time window: earliest {earliest}s is after latest {latest}s"
            ),
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::InvalidOrder { order, reason } => {
                write!(f, "invalid order {order}: {reason}")
            }
            NetError::InvalidVehicle { vehicle, reason } => {
                write!(f, "invalid vehicle {vehicle}: {reason}")
            }
            NetError::InvalidDistanceMatrix(reason) => {
                write!(f, "invalid distance matrix: {reason}")
            }
            NetError::InvalidFleet(reason) => write!(f, "invalid fleet: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = NetError::UnknownNode(NodeId(9));
        assert_eq!(e.to_string(), "unknown node N9");
        let e = NetError::InvalidOrder {
            order: OrderId(1),
            reason: "quantity must be positive".into(),
        };
        assert!(e.to_string().contains("O1"));
        assert!(e.to_string().contains("quantity"));
    }
}
