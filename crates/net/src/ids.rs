//! Strongly-typed identifiers for nodes, orders and vehicles.
//!
//! Using newtypes instead of bare integers prevents accidentally indexing a
//! distance matrix with an order id (and similar bugs) at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, suitable for indexing dense arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense array index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a node (depot or factory) in the road network.
    NodeId,
    "N"
);
define_id!(
    /// Identifier of a delivery order.
    OrderId,
    "O"
);
define_id!(
    /// Identifier of a vehicle in the fleet.
    VehicleId,
    "V"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_through_index() {
        for i in [0usize, 1, 7, 1000, u32::MAX as usize] {
            assert_eq!(NodeId::from_index(i).index(), i);
            assert_eq!(OrderId::from_index(i).index(), i);
            assert_eq!(VehicleId::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(OrderId(4).to_string(), "O4");
        assert_eq!(VehicleId(5).to_string(), "V5");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }
}
