//! Nodes of the road network: depots and factories.

use crate::ids::NodeId;
use crate::network::Point;
use serde::{Deserialize, Serialize};

/// Whether a node is a vehicle depot or a factory/warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A depot where vehicles start and end their routes.
    Depot,
    /// A factory or warehouse where cargo is picked up and delivered.
    Factory,
}

/// A node in the road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier; equals the node's index in [`crate::RoadNetwork`].
    pub id: NodeId,
    /// Depot or factory.
    pub kind: NodeKind,
    /// Planar position (kilometres); used by Euclidean network builders and
    /// by the neighbourhood-attention adjacency.
    pub pos: Point,
    /// Human-readable label, e.g. `"F3"` or `"W0"`.
    pub label: String,
}

impl Node {
    /// Creates a depot node.
    pub fn depot(id: NodeId, pos: Point) -> Self {
        Node {
            id,
            kind: NodeKind::Depot,
            pos,
            label: format!("W{}", id.0),
        }
    }

    /// Creates a factory node.
    pub fn factory(id: NodeId, pos: Point) -> Self {
        Node {
            id,
            kind: NodeKind::Factory,
            pos,
            label: format!("F{}", id.0),
        }
    }

    /// True if this node is a depot.
    #[inline]
    pub fn is_depot(&self) -> bool {
        self.kind == NodeKind::Depot
    }

    /// True if this node is a factory.
    #[inline]
    pub fn is_factory(&self) -> bool {
        self.kind == NodeKind::Factory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_label() {
        let d = Node::depot(NodeId(0), Point::new(0.0, 0.0));
        assert!(d.is_depot());
        assert!(!d.is_factory());
        assert_eq!(d.label, "W0");

        let f = Node::factory(NodeId(3), Point::new(1.0, 2.0));
        assert!(f.is_factory());
        assert_eq!(f.label, "F3");
    }
}
