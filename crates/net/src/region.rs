//! Geographic regions: partitioning a road network's nodes into shards.
//!
//! Industry-scale dispatch scores every order of a decision epoch against
//! every vehicle, even though most `(order, vehicle)` pairs are
//! geographically hopeless. A [`ShardMap`] carves the network's nodes into
//! `S` spatial regions so the dispatch layer can evaluate in-shard pairs
//! concurrently and handle cross-shard pairs through a cheap escalation
//! rule (see `dpdp-sim`'s partition → score → merge pipeline).
//!
//! Two partition policies exist ([`ShardPolicy`]):
//!
//! * [`ShardPolicy::Grid`] — a fixed `rows x cols` grid over the node
//!   bounding box, the predictable "draw lines on the map" baseline;
//! * [`ShardPolicy::KMeans`] — k-means-style seeded centroids over node
//!   coordinates (farthest-point initialisation from a seeded start, a
//!   fixed number of Lloyd refinement rounds), which adapts the regions to
//!   hotspot geometry.
//!
//! Both policies are **deterministic**: the partition is a pure function of
//! `(nodes, num_shards, policy, seed)`. Ties in nearest-centroid
//! assignments break toward the lower shard index (first-wins under
//! [`f64::total_cmp`]), so shard layouts never depend on float ordering
//! quirks or iteration interleaving.

use crate::ids::NodeId;
use crate::network::{Point, RoadNetwork};
use serde::{Deserialize, Serialize};

/// How a [`ShardMap`] assigns nodes to regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// A fixed grid over the node bounding box: `floor(sqrt(S))` rows and
    /// `ceil(S / rows)` columns, row-major shard ids, cells clamped to the
    /// box. Simple, seed-independent, and stable under node churn.
    Grid,
    /// K-means-style clustering of node coordinates: the seed picks the
    /// first centroid, the remaining `S - 1` start farthest-point from the
    /// already-chosen set, then `iterations` Lloyd rounds refine them.
    KMeans {
        /// Number of Lloyd refinement rounds (8 is plenty for campus-scale
        /// node counts; 0 keeps the farthest-point seeding as-is).
        iterations: usize,
    },
}

impl Default for ShardPolicy {
    /// Learned-geometry default: [`ShardPolicy::KMeans`] with 8 rounds.
    fn default() -> Self {
        ShardPolicy::KMeans { iterations: 8 }
    }
}

/// A deterministic partition of a network's nodes into `num_shards`
/// geographic regions.
///
/// The map is built once per simulator (the node set is static) and read
/// throughout an episode: vehicles belong to the shard of their current
/// anchor node, orders to the shard of their pickup node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardMap {
    /// Shard index per node, dense by node id.
    assignment: Vec<usize>,
    /// Representative point per shard (grid cell centre / final centroid).
    centroids: Vec<Point>,
    /// The policy the map was built with.
    policy: ShardPolicy,
    num_shards: usize,
}

impl ShardMap {
    /// Partitions `net`'s nodes into `num_shards` regions.
    ///
    /// `num_shards` is clamped to at least 1; requesting more shards than
    /// nodes leaves the surplus shards empty (their centroids collapse onto
    /// existing nodes), which is harmless — empty shards simply never own a
    /// vehicle or an order.
    ///
    /// # Panics
    /// Panics if `net` has no nodes.
    pub fn build(net: &RoadNetwork, num_shards: usize, policy: ShardPolicy, seed: u64) -> ShardMap {
        let nodes = net.nodes();
        assert!(!nodes.is_empty(), "cannot shard an empty network");
        let num_shards = num_shards.max(1);
        let points: Vec<Point> = nodes.iter().map(|n| n.pos).collect();
        let (assignment, centroids) = if num_shards == 1 {
            (vec![0; points.len()], vec![mean_point(&points)])
        } else {
            match policy {
                ShardPolicy::Grid => grid_partition(&points, num_shards),
                ShardPolicy::KMeans { iterations } => {
                    kmeans_partition(&points, num_shards, iterations, seed)
                }
            }
        };
        ShardMap {
            assignment,
            centroids,
            policy,
            num_shards,
        }
    }

    /// Number of shards the map was built for (empty shards included).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The policy the map was built with.
    #[inline]
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    /// Panics if the id is out of range for the map's network.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// Representative point of a shard (grid cell centre or final
    /// centroid).
    ///
    /// # Panics
    /// Panics if `shard >= num_shards()`.
    #[inline]
    pub fn centroid(&self, shard: usize) -> Point {
        self.centroids[shard]
    }

    /// Number of nodes assigned to each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for &s in &self.assignment {
            sizes[s] += 1;
        }
        sizes
    }

    /// Number of non-empty shards.
    pub fn occupied_shards(&self) -> usize {
        self.shard_sizes().iter().filter(|&&n| n > 0).count()
    }
}

fn mean_point(points: &[Point]) -> Point {
    let n = points.len() as f64;
    Point::new(
        points.iter().map(|p| p.x).sum::<f64>() / n,
        points.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Fixed `rows x cols` grid over the bounding box, row-major shard ids.
fn grid_partition(points: &[Point], num_shards: usize) -> (Vec<usize>, Vec<Point>) {
    let rows = (num_shards as f64).sqrt().floor().max(1.0) as usize;
    let cols = num_shards.div_ceil(rows);
    let (min_x, max_x) = min_max(points.iter().map(|p| p.x));
    let (min_y, max_y) = min_max(points.iter().map(|p| p.y));
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let assignment = points
        .iter()
        .map(|p| {
            let c = (((p.x - min_x) / span_x) * cols as f64).floor() as usize;
            let r = (((p.y - min_y) / span_y) * rows as f64).floor() as usize;
            (r.min(rows - 1) * cols + c.min(cols - 1)).min(num_shards - 1)
        })
        .collect();
    let centroids = (0..num_shards)
        .map(|s| {
            let (r, c) = (s / cols, s % cols);
            Point::new(
                min_x + (c as f64 + 0.5) / cols as f64 * span_x,
                min_y + (r as f64 + 0.5) / rows as f64 * span_y,
            )
        })
        .collect();
    (assignment, centroids)
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// Splitmix64: the deterministic seed scrambler used for centroid init.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dist2(a: Point, b: Point) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    dx * dx + dy * dy
}

/// Nearest centroid by squared distance; ties break toward the lower shard
/// index (strict `<` under `total_cmp` — first wins).
fn nearest_centroid(p: Point, centroids: &[Point]) -> usize {
    let mut best = 0usize;
    let mut best_d = dist2(p, centroids[0]);
    for (s, c) in centroids.iter().enumerate().skip(1) {
        let d = dist2(p, *c);
        if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
            best = s;
            best_d = d;
        }
    }
    best
}

/// Seeded farthest-point initialisation + fixed Lloyd rounds.
fn kmeans_partition(
    points: &[Point],
    num_shards: usize,
    iterations: usize,
    seed: u64,
) -> (Vec<usize>, Vec<Point>) {
    let k = num_shards.min(points.len());
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let first = (splitmix64(&mut state) % points.len() as u64) as usize;
    let mut centroids = vec![points[first]];
    // Farthest-point: each next centroid maximises the distance to the
    // chosen set (ties toward the lower node index — first wins).
    while centroids.len() < k {
        let mut best_idx = 0usize;
        let mut best_d = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|c| dist2(*p, *c))
                .fold(f64::INFINITY, f64::min);
            if d.total_cmp(&best_d) == std::cmp::Ordering::Greater {
                best_idx = i;
                best_d = d;
            }
        }
        centroids.push(points[best_idx]);
    }
    let mut assignment: Vec<usize> = points
        .iter()
        .map(|p| nearest_centroid(*p, &centroids))
        .collect();
    for _ in 0..iterations {
        // Lloyd: move each centroid to the mean of its members (empty
        // shards keep their centroid), then re-assign.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); centroids.len()];
        for (p, &s) in points.iter().zip(&assignment) {
            sums[s].0 += p.x;
            sums[s].1 += p.y;
            sums[s].2 += 1;
        }
        for (c, &(sx, sy, n)) in centroids.iter_mut().zip(&sums) {
            if n > 0 {
                *c = Point::new(sx / n as f64, sy / n as f64);
            }
        }
        let next: Vec<usize> = points
            .iter()
            .map(|p| nearest_centroid(*p, &centroids))
            .collect();
        if next == assignment {
            break;
        }
        assignment = next;
    }
    // Surplus shards (k < num_shards) stay empty; park their centroids on
    // the first real centroid so `centroid()` stays total.
    while centroids.len() < num_shards {
        centroids.push(centroids[0]);
    }
    (assignment, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    /// Two far-apart clusters of two nodes each.
    fn clustered_net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::depot(NodeId(2), Point::new(100.0, 100.0)),
            Node::factory(NodeId(3), Point::new(101.0, 100.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn single_shard_owns_everything() {
        let net = clustered_net();
        for policy in [ShardPolicy::Grid, ShardPolicy::default()] {
            let map = ShardMap::build(&net, 1, policy, 7);
            assert_eq!(map.num_shards(), 1);
            for n in net.nodes() {
                assert_eq!(map.shard_of(n.id), 0);
            }
            assert_eq!(map.occupied_shards(), 1);
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 2, ShardPolicy::default(), 7);
        assert_eq!(map.shard_of(NodeId(0)), map.shard_of(NodeId(1)));
        assert_eq!(map.shard_of(NodeId(2)), map.shard_of(NodeId(3)));
        assert_ne!(map.shard_of(NodeId(0)), map.shard_of(NodeId(2)));
        assert_eq!(map.occupied_shards(), 2);
    }

    #[test]
    fn grid_separates_obvious_clusters() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 4, ShardPolicy::Grid, 0);
        assert_eq!(map.shard_of(NodeId(0)), map.shard_of(NodeId(1)));
        assert_eq!(map.shard_of(NodeId(2)), map.shard_of(NodeId(3)));
        assert_ne!(map.shard_of(NodeId(0)), map.shard_of(NodeId(2)));
        let sizes = map.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let net = clustered_net();
        let a = ShardMap::build(&net, 2, ShardPolicy::default(), 42);
        let b = ShardMap::build(&net, 2, ShardPolicy::default(), 42);
        for n in net.nodes() {
            assert_eq!(a.shard_of(n.id), b.shard_of(n.id));
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_surplus_empty() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 9, ShardPolicy::default(), 3);
        assert_eq!(map.num_shards(), 9);
        assert!(map.occupied_shards() <= 4);
        // Every node still gets a valid shard and every shard a centroid.
        for n in net.nodes() {
            assert!(map.shard_of(n.id) < 9);
        }
        for s in 0..9 {
            let c = map.centroid(s);
            assert!(c.x.is_finite() && c.y.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let net = RoadNetwork::euclidean(vec![], 1.0).unwrap();
        let _ = ShardMap::build(&net, 2, ShardPolicy::Grid, 0);
    }
}
