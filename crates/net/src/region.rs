//! Geographic regions: partitioning a road network's nodes into shards.
//!
//! Industry-scale dispatch scores every order of a decision epoch against
//! every vehicle, even though most `(order, vehicle)` pairs are
//! geographically hopeless. A [`ShardMap`] carves the network's nodes into
//! `S` spatial cells so the dispatch layer can evaluate in-cell pairs
//! concurrently and handle cross-cell pairs through a cheap escalation
//! rule (see `dpdp-sim`'s partition → score → merge pipeline).
//!
//! Three partition policies exist ([`ShardPolicy`]):
//!
//! * [`ShardPolicy::Grid`] — a fixed `rows x cols` grid over the node
//!   bounding box, the predictable "draw lines on the map" baseline;
//! * [`ShardPolicy::KMeans`] — k-means-style seeded centroids over node
//!   coordinates (farthest-point initialisation from a seeded start, a
//!   fixed number of Lloyd refinement rounds), which adapts the regions to
//!   hotspot geometry;
//! * [`ShardPolicy::Hierarchical`] — a **two-level** partition for
//!   megacity scale: a coarse k-means pass carves the map into metro
//!   *regions*, then each region is k-means-split into fine *cells*. The
//!   flat shard index space is the cell space (`regions *
//!   cells_per_region` cells); [`ShardMap::region_of`] recovers a cell's
//!   parent region so escalation can stay region-local.
//!
//! Flat maps (`Grid`/`KMeans`) are a single region containing all their
//! cells, so two-level consumers can treat every map uniformly.
//!
//! All policies are **deterministic**: the partition is a pure function of
//! `(nodes, num_shards, policy, seed[, weights])`. Ties in
//! nearest-centroid assignments break toward the lower shard index
//! (first-wins under [`f64::total_cmp`]), so shard layouts never depend on
//! float ordering quirks or iteration interleaving.
//!
//! [`ShardMap::build_weighted`] re-derives a map from per-node demand
//! weights (e.g. recent order pickups): Lloyd means become weighted means,
//! pulling centroids toward live demand — the primitive behind
//! mid-episode re-partitioning in `dpdp-sim`.

use crate::ids::NodeId;
use crate::network::{Point, RoadNetwork};
use serde::{Deserialize, Serialize};

/// How a [`ShardMap`] assigns nodes to regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// A fixed grid over the node bounding box: `floor(sqrt(S))` rows and
    /// `ceil(S / rows)` columns, row-major shard ids, cells clamped to the
    /// box. Simple, seed-independent, and stable under node churn.
    Grid,
    /// K-means-style clustering of node coordinates: the seed picks the
    /// first centroid, the remaining `S - 1` start farthest-point from the
    /// already-chosen set, then `iterations` Lloyd rounds refine them.
    KMeans {
        /// Number of Lloyd refinement rounds (8 is plenty for campus-scale
        /// node counts; 0 keeps the farthest-point seeding as-is).
        iterations: usize,
    },
    /// Two-level partition: a coarse k-means pass into `regions` metro
    /// regions, then a per-region k-means pass into `cells_per_region`
    /// cells each. Cell `c`'s parent region is `c / cells_per_region`;
    /// the map's shard count is always `regions * cells_per_region`.
    Hierarchical {
        /// Number of coarse metro regions.
        regions: usize,
        /// Number of fine cells each region is split into.
        cells_per_region: usize,
        /// Lloyd rounds for both the coarse and the per-region pass.
        iterations: usize,
    },
}

impl Default for ShardPolicy {
    /// Learned-geometry default: [`ShardPolicy::KMeans`] with 8 rounds.
    fn default() -> Self {
        ShardPolicy::KMeans { iterations: 8 }
    }
}

/// A deterministic partition of a network's nodes into `num_shards`
/// geographic cells, optionally grouped under coarse parent regions.
///
/// The map is built once per simulator (the node set is static) and read
/// throughout an episode: vehicles belong to the shard of their current
/// anchor node, orders to the shard of their pickup node. Mid-episode
/// re-partitioning swaps in a fresh map built by
/// [`ShardMap::build_weighted`] at an epoch boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardMap {
    /// Shard (cell) index per node, dense by node id.
    assignment: Vec<usize>,
    /// Representative point per shard (grid cell centre / final centroid).
    centroids: Vec<Point>,
    /// Parent region per cell; all zeros for flat (single-region) maps.
    cell_region: Vec<usize>,
    /// The policy the map was built with.
    policy: ShardPolicy,
    num_shards: usize,
    num_regions: usize,
}

impl ShardMap {
    /// Partitions `net`'s nodes into `num_shards` cells.
    ///
    /// `num_shards` is clamped to at least 1; requesting more shards than
    /// nodes leaves the surplus shards empty (their centroids collapse onto
    /// existing nodes), which is harmless — empty shards simply never own a
    /// vehicle or an order.
    ///
    /// # Panics
    /// Panics if `net` has no nodes, or if the policy is
    /// [`ShardPolicy::Hierarchical`] and `num_shards != regions *
    /// cells_per_region`.
    pub fn build(net: &RoadNetwork, num_shards: usize, policy: ShardPolicy, seed: u64) -> ShardMap {
        Self::build_inner(net, num_shards, policy, seed, None)
    }

    /// Like [`ShardMap::build`], but Lloyd centroid updates use the given
    /// per-node demand `weights` (weighted means), pulling cells toward
    /// where demand actually is. Nodes with zero weight still get
    /// assigned to their nearest cell; a cell whose members carry no
    /// weight falls back to the unweighted mean. [`ShardPolicy::Grid`] is
    /// geometry-only and ignores the weights.
    ///
    /// # Panics
    /// Panics on the same conditions as [`ShardMap::build`], and if
    /// `weights.len()` differs from the node count.
    pub fn build_weighted(
        net: &RoadNetwork,
        num_shards: usize,
        policy: ShardPolicy,
        seed: u64,
        weights: &[f64],
    ) -> ShardMap {
        assert_eq!(
            weights.len(),
            net.nodes().len(),
            "demand weights must cover every node"
        );
        Self::build_inner(net, num_shards, policy, seed, Some(weights))
    }

    fn build_inner(
        net: &RoadNetwork,
        num_shards: usize,
        policy: ShardPolicy,
        seed: u64,
        weights: Option<&[f64]>,
    ) -> ShardMap {
        let nodes = net.nodes();
        assert!(!nodes.is_empty(), "cannot shard an empty network");
        if let ShardPolicy::Hierarchical {
            regions,
            cells_per_region,
            ..
        } = policy
        {
            assert_eq!(
                num_shards,
                regions * cells_per_region,
                "hierarchical shard count must equal regions * cells_per_region"
            );
        }
        let num_shards = num_shards.max(1);
        let points: Vec<Point> = nodes.iter().map(|n| n.pos).collect();
        let (assignment, centroids, cell_region, num_regions) = if num_shards == 1 {
            (vec![0; points.len()], vec![mean_point(&points)], vec![0], 1)
        } else {
            match policy {
                ShardPolicy::Grid => {
                    let (a, c) = grid_partition(&points, num_shards);
                    (a, c, vec![0; num_shards], 1)
                }
                ShardPolicy::KMeans { iterations } => {
                    let (a, c) = kmeans_partition(&points, weights, num_shards, iterations, seed);
                    (a, c, vec![0; num_shards], 1)
                }
                ShardPolicy::Hierarchical {
                    regions,
                    cells_per_region,
                    iterations,
                } => {
                    let (a, c) = hierarchical_partition(
                        &points,
                        weights,
                        regions,
                        cells_per_region,
                        iterations,
                        seed,
                    );
                    let cell_region = (0..num_shards).map(|s| s / cells_per_region).collect();
                    (a, c, cell_region, regions)
                }
            }
        };
        ShardMap {
            assignment,
            centroids,
            cell_region,
            policy,
            num_shards,
            num_regions,
        }
    }

    /// Number of shards (cells) the map was built for (empty shards
    /// included).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of coarse parent regions: 1 for flat maps, `regions` for
    /// hierarchical ones.
    #[inline]
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// The policy the map was built with.
    #[inline]
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The shard (cell) owning `node`.
    ///
    /// # Panics
    /// Panics if the id is out of range for the map's network.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// The parent region of a cell (always 0 on flat maps).
    ///
    /// # Panics
    /// Panics if `shard >= num_shards()`.
    #[inline]
    pub fn region_of(&self, shard: usize) -> usize {
        self.cell_region[shard]
    }

    /// The parent region owning `node` (via its cell).
    ///
    /// # Panics
    /// Panics if the id is out of range for the map's network.
    #[inline]
    pub fn region_of_node(&self, node: NodeId) -> usize {
        self.region_of(self.shard_of(node))
    }

    /// Representative point of a shard (grid cell centre or final
    /// centroid).
    ///
    /// # Panics
    /// Panics if `shard >= num_shards()`.
    #[inline]
    pub fn centroid(&self, shard: usize) -> Point {
        self.centroids[shard]
    }

    /// Number of nodes assigned to each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for &s in &self.assignment {
            sizes[s] += 1;
        }
        sizes
    }

    /// Number of non-empty shards.
    pub fn occupied_shards(&self) -> usize {
        self.shard_sizes().iter().filter(|&&n| n > 0).count()
    }
}

fn mean_point(points: &[Point]) -> Point {
    let n = points.len() as f64;
    Point::new(
        points.iter().map(|p| p.x).sum::<f64>() / n,
        points.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Fixed `rows x cols` grid over the bounding box, row-major shard ids.
fn grid_partition(points: &[Point], num_shards: usize) -> (Vec<usize>, Vec<Point>) {
    let rows = (num_shards as f64).sqrt().floor().max(1.0) as usize;
    let cols = num_shards.div_ceil(rows);
    let (min_x, max_x) = min_max(points.iter().map(|p| p.x));
    let (min_y, max_y) = min_max(points.iter().map(|p| p.y));
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let assignment = points
        .iter()
        .map(|p| {
            let c = (((p.x - min_x) / span_x) * cols as f64).floor() as usize;
            let r = (((p.y - min_y) / span_y) * rows as f64).floor() as usize;
            (r.min(rows - 1) * cols + c.min(cols - 1)).min(num_shards - 1)
        })
        .collect();
    let centroids = (0..num_shards)
        .map(|s| {
            let (r, c) = (s / cols, s % cols);
            Point::new(
                min_x + (c as f64 + 0.5) / cols as f64 * span_x,
                min_y + (r as f64 + 0.5) / rows as f64 * span_y,
            )
        })
        .collect();
    (assignment, centroids)
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// Splitmix64: the deterministic seed scrambler used for centroid init.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn dist2(a: Point, b: Point) -> f64 {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    dx * dx + dy * dy
}

/// Nearest centroid by squared distance; ties break toward the lower shard
/// index (strict `<` under `total_cmp` — first wins).
fn nearest_centroid(p: Point, centroids: &[Point]) -> usize {
    let mut best = 0usize;
    let mut best_d = dist2(p, centroids[0]);
    for (s, c) in centroids.iter().enumerate().skip(1) {
        let d = dist2(p, *c);
        if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
            best = s;
            best_d = d;
        }
    }
    best
}

/// Seeded farthest-point initialisation + fixed Lloyd rounds.
///
/// With `weights`, each Lloyd round moves a centroid to the *weighted*
/// mean of its members (falling back to the unweighted mean when the
/// members carry no weight); initialisation stays geometric so that empty
/// demand cannot collapse the layout.
///
/// After the rounds, any cluster that ended up with zero members is
/// deterministically **re-seeded**: it steals the point farthest from its
/// current centroid among clusters that can spare one (≥ 2 members; ties
/// toward the lower node index). This guarantees
/// `occupied == min(num_shards, points.len())` even for degenerate seeds
/// or duplicate node coordinates, where plain Lloyd iteration can strand
/// a shard with zero nodes.
fn kmeans_partition(
    points: &[Point],
    weights: Option<&[f64]>,
    num_shards: usize,
    iterations: usize,
    seed: u64,
) -> (Vec<usize>, Vec<Point>) {
    let k = num_shards.min(points.len());
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let first = (splitmix64(&mut state) % points.len() as u64) as usize;
    let mut centroids = vec![points[first]];
    // Farthest-point: each next centroid maximises the distance to the
    // chosen set (ties toward the lower node index — first wins).
    while centroids.len() < k {
        let mut best_idx = 0usize;
        let mut best_d = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|c| dist2(*p, *c))
                .fold(f64::INFINITY, f64::min);
            if d.total_cmp(&best_d) == std::cmp::Ordering::Greater {
                best_idx = i;
                best_d = d;
            }
        }
        centroids.push(points[best_idx]);
    }
    let weight_of = |i: usize| weights.map_or(1.0, |w| w[i]);
    let mut assignment: Vec<usize> = points
        .iter()
        .map(|p| nearest_centroid(*p, &centroids))
        .collect();
    for _ in 0..iterations {
        // Lloyd: move each centroid to the (weighted) mean of its members
        // (empty shards keep their centroid this round — the final
        // re-seed pass below guarantees they do not stay empty), then
        // re-assign.
        // Per cluster: (w·x, w·y, Σw, Σx, Σy, count).
        let mut sums = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0usize); centroids.len()];
        for (i, (p, &s)) in points.iter().zip(&assignment).enumerate() {
            let w = weight_of(i);
            sums[s].0 += w * p.x;
            sums[s].1 += w * p.y;
            sums[s].2 += w;
            sums[s].3 += p.x;
            sums[s].4 += p.y;
            sums[s].5 += 1;
        }
        for (c, &(wx, wy, wsum, sx, sy, n)) in centroids.iter_mut().zip(&sums) {
            if wsum > 0.0 {
                *c = Point::new(wx / wsum, wy / wsum);
            } else if n > 0 {
                *c = Point::new(sx / n as f64, sy / n as f64);
            }
        }
        let next: Vec<usize> = points
            .iter()
            .map(|p| nearest_centroid(*p, &centroids))
            .collect();
        if next == assignment {
            break;
        }
        assignment = next;
    }
    // Deterministic empty-cluster re-seed (see doc comment above).
    let mut counts = vec![0usize; centroids.len()];
    for &s in &assignment {
        counts[s] += 1;
    }
    for c in 0..centroids.len() {
        if counts[c] > 0 {
            continue;
        }
        let mut donor: Option<(usize, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            if counts[assignment[i]] < 2 {
                continue;
            }
            let d = dist2(*p, centroids[assignment[i]]);
            if donor.is_none_or(|(_, bd)| d.total_cmp(&bd) == std::cmp::Ordering::Greater) {
                donor = Some((i, d));
            }
        }
        if let Some((i, _)) = donor {
            counts[assignment[i]] -= 1;
            assignment[i] = c;
            counts[c] = 1;
            centroids[c] = points[i];
        }
    }
    // Surplus shards (k < num_shards) stay empty; park their centroids on
    // the first real centroid so `centroid()` stays total.
    while centroids.len() < num_shards {
        centroids.push(centroids[0]);
    }
    (assignment, centroids)
}

/// Two-level partition: a coarse k-means pass into `regions`, then a
/// per-region k-means pass into `cells_per_region` cells each. Cell ids
/// are region-major (`region * cells_per_region + local_cell`), so the
/// parent region of cell `c` is always `c / cells_per_region`.
///
/// Each region's cell pass runs on an independent splitmix64-derived
/// sub-seed, so the whole layout stays a pure function of
/// `(points, weights, regions, cells_per_region, iterations, seed)`.
fn hierarchical_partition(
    points: &[Point],
    weights: Option<&[f64]>,
    regions: usize,
    cells_per_region: usize,
    iterations: usize,
    seed: u64,
) -> (Vec<usize>, Vec<Point>) {
    let regions = regions.max(1);
    let cells_per_region = cells_per_region.max(1);
    let num_shards = regions * cells_per_region;
    let (region_assignment, region_centroids) =
        kmeans_partition(points, weights, regions, iterations, seed);
    let mut assignment = vec![0usize; points.len()];
    let mut centroids = vec![Point::new(0.0, 0.0); num_shards];
    for (r, &region_centroid) in region_centroids.iter().enumerate().take(regions) {
        let members: Vec<usize> = (0..points.len())
            .filter(|&i| region_assignment[i] == r)
            .collect();
        let base = r * cells_per_region;
        if members.is_empty() {
            // An empty region (more regions than nodes): park its cells'
            // centroids on the region centroid so `centroid()` stays total.
            for c in 0..cells_per_region {
                centroids[base + c] = region_centroid;
            }
            continue;
        }
        let sub_points: Vec<Point> = members.iter().map(|&i| points[i]).collect();
        let sub_weights: Vec<f64> = match weights {
            Some(w) => members.iter().map(|&i| w[i]).collect(),
            None => Vec::new(),
        };
        let sub_weights = weights.map(|_| sub_weights.as_slice());
        let mut sub_state = seed ^ (r as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let sub_seed = splitmix64(&mut sub_state);
        let (sub_assignment, sub_centroids) = kmeans_partition(
            &sub_points,
            sub_weights,
            cells_per_region,
            iterations,
            sub_seed,
        );
        for (&i, &cell) in members.iter().zip(&sub_assignment) {
            assignment[i] = base + cell;
        }
        centroids[base..base + cells_per_region].copy_from_slice(&sub_centroids);
    }
    (assignment, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;

    /// Two far-apart clusters of two nodes each.
    fn clustered_net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::depot(NodeId(2), Point::new(100.0, 100.0)),
            Node::factory(NodeId(3), Point::new(101.0, 100.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    /// Four well-separated quadrant clusters of three nodes each.
    fn quadrant_net() -> RoadNetwork {
        let mut nodes = Vec::new();
        for (q, (cx, cy)) in [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)]
            .into_iter()
            .enumerate()
        {
            for j in 0..3u32 {
                let id = NodeId(q as u32 * 3 + j);
                let p = Point::new(cx + j as f64, cy + (j % 2) as f64);
                nodes.push(if j == 0 {
                    Node::depot(id, p)
                } else {
                    Node::factory(id, p)
                });
            }
        }
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn single_shard_owns_everything() {
        let net = clustered_net();
        for policy in [ShardPolicy::Grid, ShardPolicy::default()] {
            let map = ShardMap::build(&net, 1, policy, 7);
            assert_eq!(map.num_shards(), 1);
            assert_eq!(map.num_regions(), 1);
            for n in net.nodes() {
                assert_eq!(map.shard_of(n.id), 0);
                assert_eq!(map.region_of_node(n.id), 0);
            }
            assert_eq!(map.occupied_shards(), 1);
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 2, ShardPolicy::default(), 7);
        assert_eq!(map.shard_of(NodeId(0)), map.shard_of(NodeId(1)));
        assert_eq!(map.shard_of(NodeId(2)), map.shard_of(NodeId(3)));
        assert_ne!(map.shard_of(NodeId(0)), map.shard_of(NodeId(2)));
        assert_eq!(map.occupied_shards(), 2);
    }

    #[test]
    fn grid_separates_obvious_clusters() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 4, ShardPolicy::Grid, 0);
        assert_eq!(map.shard_of(NodeId(0)), map.shard_of(NodeId(1)));
        assert_eq!(map.shard_of(NodeId(2)), map.shard_of(NodeId(3)));
        assert_ne!(map.shard_of(NodeId(0)), map.shard_of(NodeId(2)));
        let sizes = map.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let net = clustered_net();
        let a = ShardMap::build(&net, 2, ShardPolicy::default(), 42);
        let b = ShardMap::build(&net, 2, ShardPolicy::default(), 42);
        for n in net.nodes() {
            assert_eq!(a.shard_of(n.id), b.shard_of(n.id));
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_surplus_empty() {
        let net = clustered_net();
        let map = ShardMap::build(&net, 9, ShardPolicy::default(), 3);
        assert_eq!(map.num_shards(), 9);
        // The re-seed guarantee: as many occupied shards as nodes allow.
        assert_eq!(map.occupied_shards(), 4);
        // Every node still gets a valid shard and every shard a centroid.
        for n in net.nodes() {
            assert!(map.shard_of(n.id) < 9);
        }
        for s in 0..9 {
            let c = map.centroid(s);
            assert!(c.x.is_finite() && c.y.is_finite());
        }
    }

    #[test]
    fn duplicate_coordinates_no_longer_strand_empty_shards() {
        // Three distinct locations but six nodes: farthest-point init must
        // duplicate a centroid, and duplicate centroids tie every
        // assignment toward the lower shard — without the re-seed pass one
        // shard ends the Lloyd rounds with zero nodes.
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(0.0, 0.0)),
            Node::factory(NodeId(2), Point::new(0.0, 0.0)),
            Node::factory(NodeId(3), Point::new(10.0, 0.0)),
            Node::factory(NodeId(4), Point::new(10.0, 0.0)),
            Node::factory(NodeId(5), Point::new(20.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        for seed in 0..8 {
            let map = ShardMap::build(&net, 4, ShardPolicy::default(), seed);
            assert_eq!(
                map.occupied_shards(),
                4,
                "seed {seed} stranded an empty shard: sizes {:?}",
                map.shard_sizes()
            );
            let again = ShardMap::build(&net, 4, ShardPolicy::default(), seed);
            for n in net.nodes() {
                assert_eq!(map.shard_of(n.id), again.shard_of(n.id));
            }
        }
    }

    #[test]
    fn hierarchical_nests_cells_inside_regions() {
        let net = quadrant_net();
        let policy = ShardPolicy::Hierarchical {
            regions: 4,
            cells_per_region: 2,
            iterations: 8,
        };
        let map = ShardMap::build(&net, 8, policy, 11);
        assert_eq!(map.num_shards(), 8);
        assert_eq!(map.num_regions(), 4);
        // Cell ids are region-major.
        for s in 0..8 {
            assert_eq!(map.region_of(s), s / 2);
        }
        // The coarse pass separates the quadrants: nodes of one quadrant
        // share a region, different quadrants never do.
        for q in 0..4u32 {
            let r = map.region_of_node(NodeId(q * 3));
            for j in 1..3u32 {
                assert_eq!(map.region_of_node(NodeId(q * 3 + j)), r, "quadrant {q}");
            }
        }
        let regions: std::collections::HashSet<usize> = (0..4u32)
            .map(|q| map.region_of_node(NodeId(q * 3)))
            .collect();
        assert_eq!(regions.len(), 4, "quadrants must land in distinct regions");
        // Every quadrant's 3 nodes split across its own 2 cells.
        assert_eq!(map.occupied_shards(), 8);
    }

    #[test]
    #[should_panic(expected = "regions * cells_per_region")]
    fn hierarchical_rejects_mismatched_shard_count() {
        let net = quadrant_net();
        let policy = ShardPolicy::Hierarchical {
            regions: 4,
            cells_per_region: 2,
            iterations: 8,
        };
        let _ = ShardMap::build(&net, 7, policy, 0);
    }

    #[test]
    fn weighted_build_pulls_centroids_toward_demand() {
        let net = clustered_net();
        // All demand on the far cluster: its shard centroid must sit on
        // the demand-weighted mean of nodes 2 and 3, not the geometric one.
        let weights = vec![0.0, 0.0, 3.0, 1.0];
        let map = ShardMap::build_weighted(&net, 2, ShardPolicy::default(), 7, &weights);
        assert_eq!(map.occupied_shards(), 2, "zero-weight nodes keep a shard");
        let hot = map.shard_of(NodeId(2));
        let c = map.centroid(hot);
        let expected_x = (3.0 * 100.0 + 101.0) / 4.0;
        assert!((c.x - expected_x).abs() < 1e-9, "got {}", c.x);
        // Uniform weights reproduce the unweighted build exactly.
        let uniform = ShardMap::build_weighted(&net, 2, ShardPolicy::default(), 7, &[1.0; 4]);
        let plain = ShardMap::build(&net, 2, ShardPolicy::default(), 7);
        for n in net.nodes() {
            assert_eq!(uniform.shard_of(n.id), plain.shard_of(n.id));
        }
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn empty_network_panics() {
        let net = RoadNetwork::euclidean(vec![], 1.0).unwrap();
        let _ = ShardMap::build(&net, 2, ShardPolicy::Grid, 0);
    }
}
