//! The road network: a complete directed graph over depots and factories
//! with a dense distance matrix.

use crate::error::NetError;
use crate::ids::NodeId;
use crate::node::{Node, NodeKind};
use serde::{Deserialize, Serialize};

/// A planar point; coordinates are in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting, km.
    pub x: f64,
    /// Northing, km.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, km.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A complete directed road network `G = (N, A)` with non-negative arc
/// distances `d_{i,j}` stored as a dense row-major matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    /// Row-major `n x n` distance matrix in kilometres.
    dist: Vec<f64>,
    /// Whether the matrix satisfies the triangle inequality (within
    /// [`METRIC_TOLERANCE_KM`]); computed once at construction.
    metric: bool,
}

/// Slack allowed when classifying a network as metric: a triple may violate
/// the triangle inequality by at most this many kilometres. Consumers that
/// prune work based on [`RoadNetwork::is_metric`] must absorb this slack in
/// their own safety margins (see `dpdp-routing`'s escalation bound).
pub const METRIC_TOLERANCE_KM: f64 = 1e-9;

/// Triangle-inequality check over all node triples, `O(n³)` — run once at
/// construction so [`RoadNetwork::is_metric`] is a free lookup afterwards.
fn matrix_is_metric(dist: &[f64], n: usize) -> bool {
    for i in 0..n {
        for k in 0..n {
            let d_ik = dist[i * n + k];
            for j in 0..n {
                if dist[i * n + j] > d_ik + dist[k * n + j] + METRIC_TOLERANCE_KM {
                    return false;
                }
            }
        }
    }
    true
}

impl RoadNetwork {
    /// Builds a network from nodes using Euclidean distances scaled by
    /// `detour_factor` (>= 1.0 models the fact that road distance exceeds
    /// straight-line distance).
    ///
    /// # Errors
    /// Returns an error if node ids are not dense `0..n` or the detour factor
    /// is invalid.
    pub fn euclidean(nodes: Vec<Node>, detour_factor: f64) -> Result<Self, NetError> {
        if !(detour_factor.is_finite() && detour_factor >= 1.0) {
            return Err(NetError::InvalidDistanceMatrix(format!(
                "detour factor must be finite and >= 1.0, got {detour_factor}"
            )));
        }
        Self::validate_node_ids(&nodes)?;
        let n = nodes.len();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    dist[i * n + j] = nodes[i].pos.distance(&nodes[j].pos) * detour_factor;
                }
            }
        }
        // Euclidean-by-construction distances satisfy the triangle
        // inequality up to float rounding; record it through the same
        // checker the matrix path uses so the flag's semantics are uniform.
        let metric = matrix_is_metric(&dist, n);
        Ok(RoadNetwork {
            nodes,
            dist,
            metric,
        })
    }

    /// Builds a network from an explicit row-major distance matrix.
    ///
    /// # Errors
    /// Returns an error if the matrix is not `n x n`, contains negative or
    /// non-finite entries, or has a non-zero diagonal.
    pub fn with_matrix(nodes: Vec<Node>, dist: Vec<f64>) -> Result<Self, NetError> {
        Self::validate_node_ids(&nodes)?;
        let n = nodes.len();
        if dist.len() != n * n {
            return Err(NetError::InvalidDistanceMatrix(format!(
                "expected {} entries for {n} nodes, got {}",
                n * n,
                dist.len()
            )));
        }
        for i in 0..n {
            for j in 0..n {
                let d = dist[i * n + j];
                if !d.is_finite() || d < 0.0 {
                    return Err(NetError::InvalidDistanceMatrix(format!(
                        "distance ({i},{j}) = {d} is negative or non-finite"
                    )));
                }
                if i == j && d != 0.0 {
                    return Err(NetError::InvalidDistanceMatrix(format!(
                        "diagonal entry ({i},{i}) must be zero, got {d}"
                    )));
                }
            }
        }
        let metric = matrix_is_metric(&dist, n);
        Ok(RoadNetwork {
            nodes,
            dist,
            metric,
        })
    }

    fn validate_node_ids(nodes: &[Node]) -> Result<(), NetError> {
        for (i, node) in nodes.iter().enumerate() {
            if node.id.index() != i {
                return Err(NetError::InvalidDistanceMatrix(format!(
                    "node at position {i} has id {}, ids must be dense 0..n",
                    node.id
                )));
            }
        }
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked node lookup.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetError> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// Distance from `from` to `to` in kilometres.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    #[inline]
    pub fn distance(&self, from: NodeId, to: NodeId) -> f64 {
        self.dist[from.index() * self.nodes.len() + to.index()]
    }

    /// Batched distance row: `out[i] = distance(from, targets[i])`.
    ///
    /// One bounds-checked row-base computation covers the whole call, and
    /// the row of the distance matrix is scanned contiguously — this is the
    /// kernel the insertion-sweep leg tables and the epoch classification
    /// memo are built from, amortizing matrix indexing across a candidate
    /// row instead of paying it per [`RoadNetwork::distance`] call. Each
    /// entry is the identical matrix element `distance` returns, so batched
    /// and per-call lookups are interchangeable bit for bit.
    ///
    /// # Panics
    /// Panics if `out.len() != targets.len()` or any id is out of range.
    pub fn distances_from(&self, from: NodeId, targets: &[NodeId], out: &mut [f64]) {
        assert_eq!(out.len(), targets.len(), "distances_from length mismatch");
        let row = &self.dist[from.index() * self.nodes.len()..(from.index() + 1) * self.nodes.len()];
        for (o, t) in out.iter_mut().zip(targets) {
            *o = row[t.index()];
        }
    }

    /// Batched distance column gather: `out[i] = distance(sources[i], to)`.
    ///
    /// The column-major companion of [`RoadNetwork::distances_from`] (same
    /// bit-for-bit contract); the gather is strided rather than contiguous,
    /// but still amortizes the per-call index arithmetic and bounds checks.
    ///
    /// # Panics
    /// Panics if `out.len() != sources.len()` or any id is out of range.
    pub fn distances_to(&self, to: NodeId, sources: &[NodeId], out: &mut [f64]) {
        assert_eq!(out.len(), sources.len(), "distances_to length mismatch");
        let n = self.nodes.len();
        let col = to.index();
        assert!(col < n, "distances_to target out of range");
        for (o, s) in out.iter_mut().zip(sources) {
            *o = self.dist[s.index() * n + col];
        }
    }

    /// Batched pairwise legs: `out[i] = distance(from[i], to[i])`.
    ///
    /// Used to evaluate all consecutive legs of a route in one call (pass
    /// the path's node list offset by one); same bit-for-bit contract as
    /// [`RoadNetwork::distance`].
    ///
    /// # Panics
    /// Panics if the three slices have different lengths or any id is out
    /// of range.
    pub fn leg_distances(&self, from: &[NodeId], to: &[NodeId], out: &mut [f64]) {
        assert_eq!(from.len(), to.len(), "leg_distances length mismatch");
        assert_eq!(out.len(), from.len(), "leg_distances length mismatch");
        let n = self.nodes.len();
        for ((o, f), t) in out.iter_mut().zip(from).zip(to) {
            *o = self.dist[f.index() * n + t.index()];
        }
    }

    /// Ids of all depot nodes.
    pub fn depots(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Depot)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all factory nodes.
    pub fn factories(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Factory)
            .map(|n| n.id)
            .collect()
    }

    /// Number of factory nodes (`n` in the paper's STD matrix).
    pub fn num_factories(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Factory)
            .count()
    }

    /// Total length of a node sequence (sum of consecutive arc distances).
    pub fn path_length(&self, path: &[NodeId]) -> f64 {
        path.windows(2).map(|w| self.distance(w[0], w[1])).sum()
    }

    /// Whether the distance matrix satisfies the triangle inequality
    /// (within [`METRIC_TOLERANCE_KM`]). Euclidean-built networks are
    /// metric; explicit matrices may not be. Geometric shortcut reasoning —
    /// e.g. the cross-shard infeasibility bound in `dpdp-routing` — is only
    /// sound on metric networks, so consumers gate on this flag.
    #[inline]
    pub fn is_metric(&self) -> bool {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(1.0, 1.0)),
            Node::factory(NodeId(3), Point::new(0.0, 1.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    #[test]
    fn euclidean_distances_are_symmetric_here() {
        let net = square_net();
        assert_eq!(net.num_nodes(), 4);
        assert!((net.distance(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((net.distance(NodeId(0), NodeId(2)) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(
            net.distance(NodeId(1), NodeId(3)),
            net.distance(NodeId(3), NodeId(1))
        );
        assert_eq!(net.distance(NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    fn detour_factor_scales_distances() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(3.0, 4.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.3).unwrap();
        assert!((net.distance(NodeId(0), NodeId(1)) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_detour_factor_rejected() {
        let nodes = vec![Node::depot(NodeId(0), Point::new(0.0, 0.0))];
        assert!(RoadNetwork::euclidean(nodes.clone(), 0.5).is_err());
        assert!(RoadNetwork::euclidean(nodes, f64::NAN).is_err());
    }

    #[test]
    fn matrix_validation_rejects_bad_input() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
        ];
        // Wrong size.
        assert!(RoadNetwork::with_matrix(nodes.clone(), vec![0.0; 3]).is_err());
        // Negative entry.
        assert!(RoadNetwork::with_matrix(nodes.clone(), vec![0.0, -1.0, 1.0, 0.0]).is_err());
        // Non-zero diagonal.
        assert!(RoadNetwork::with_matrix(nodes.clone(), vec![1.0, 1.0, 1.0, 0.0]).is_err());
        // Asymmetric but valid (complete *directed* graph).
        let net = RoadNetwork::with_matrix(nodes, vec![0.0, 2.0, 5.0, 0.0]).unwrap();
        assert_eq!(net.distance(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(net.distance(NodeId(1), NodeId(0)), 5.0);
    }

    #[test]
    fn non_dense_ids_rejected() {
        let nodes = vec![Node::depot(NodeId(5), Point::new(0.0, 0.0))];
        assert!(RoadNetwork::euclidean(nodes, 1.0).is_err());
    }

    #[test]
    fn depot_factory_partition() {
        let net = square_net();
        assert_eq!(net.depots(), vec![NodeId(0)]);
        assert_eq!(net.factories(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(net.num_factories(), 3);
    }

    #[test]
    fn euclidean_networks_are_metric() {
        assert!(square_net().is_metric());
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(3.0, 4.0)),
        ];
        assert!(RoadNetwork::euclidean(nodes, 1.3).unwrap().is_metric());
    }

    #[test]
    fn matrix_networks_report_metric_violations() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
        ];
        // 0 -> 2 direct costs 10 but 0 -> 1 -> 2 costs 2: non-metric.
        #[rustfmt::skip]
        let non_metric = vec![
            0.0, 1.0, 10.0,
            1.0, 0.0,  1.0,
            10.0, 1.0, 0.0,
        ];
        let net = RoadNetwork::with_matrix(nodes.clone(), non_metric).unwrap();
        assert!(!net.is_metric());
        // A consistent shortest-path matrix is metric.
        #[rustfmt::skip]
        let metric = vec![
            0.0, 1.0, 2.0,
            1.0, 0.0, 1.0,
            2.0, 1.0, 0.0,
        ];
        let net = RoadNetwork::with_matrix(nodes, metric).unwrap();
        assert!(net.is_metric());
    }

    #[test]
    fn path_length_sums_arcs() {
        let net = square_net();
        let path = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(0)];
        assert!((net.path_length(&path) - 4.0).abs() < 1e-12);
        assert_eq!(net.path_length(&[NodeId(0)]), 0.0);
        assert_eq!(net.path_length(&[]), 0.0);
    }
}
