//! Core problem types for the Dynamic Pickup and Delivery Problem (DPDP).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: the road network ([`RoadNetwork`]), delivery orders
//! ([`Order`]), the vehicle fleet ([`FleetConfig`]), simulation time
//! ([`TimePoint`], [`TimeDelta`], [`IntervalGrid`]) and complete problem
//! instances ([`Instance`]).
//!
//! The model follows Section III of *Learning to Optimize Industry-Scale
//! Dynamic Pickup and Delivery Problems* (ICDE 2021):
//!
//! * a complete directed road network over depots and factories with
//!   non-negative arc distances;
//! * delivery orders `o_i = (F_p, F_d, q, t_c, t_l)` that appear dynamically;
//! * a homogeneous fleet, each vehicle configured with a starting depot,
//!   a capacity `Q`, a fixed usage cost `mu` and a per-kilometre operating
//!   cost `delta`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod instance;
pub mod network;
pub mod node;
pub mod order;
pub mod region;
pub mod time;
pub mod vehicle;

pub use error::NetError;
pub use ids::{NodeId, OrderId, VehicleId};
pub use instance::Instance;
pub use network::{Point, RoadNetwork, METRIC_TOLERANCE_KM};
pub use node::{Node, NodeKind};
pub use order::Order;
pub use region::{ShardMap, ShardPolicy};
pub use time::{IntervalGrid, TimeDelta, TimePoint, TimeWindow};
pub use vehicle::{FleetConfig, VehicleConfig};
