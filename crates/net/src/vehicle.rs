//! Vehicle and fleet configuration.

use crate::error::NetError;
use crate::ids::{NodeId, VehicleId};
use crate::network::RoadNetwork;
use crate::time::TimeDelta;
use serde::{Deserialize, Serialize};

/// Per-vehicle configuration `conf_k = (w_k, Q, mu, delta)` restricted to the
/// per-vehicle parts: the starting depot. Capacity and costs are fleet-wide
/// because the fleet is homogeneous (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleConfig {
    /// Identifier; equals the vehicle's index within the fleet.
    pub id: VehicleId,
    /// Starting (and ending) depot `w_k`.
    pub depot: NodeId,
}

/// Configuration of the homogeneous fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// One entry per vehicle, ids dense `0..K`.
    pub vehicles: Vec<VehicleConfig>,
    /// Maximum loading capacity `Q` per vehicle.
    pub capacity: f64,
    /// Fixed cost `mu` of using a vehicle at all (considerably larger than
    /// the per-km cost in practice).
    pub fixed_cost: f64,
    /// Operating cost `delta` per kilometre (fuel, maintenance, wages).
    pub unit_cost: f64,
    /// Constant average travel speed, km/h (Definition 2 simplifies travel
    /// time to distance over a constant speed).
    pub speed_kmh: f64,
    /// Service (loading or unloading) time spent at each stop.
    pub service_time: TimeDelta,
}

impl FleetConfig {
    /// Creates a fleet of `k` vehicles distributed round-robin over `depots`.
    ///
    /// # Errors
    /// Returns an error on empty depots or invalid scalar parameters.
    pub fn homogeneous(
        k: usize,
        depots: &[NodeId],
        capacity: f64,
        fixed_cost: f64,
        unit_cost: f64,
        speed_kmh: f64,
        service_time: TimeDelta,
    ) -> Result<Self, NetError> {
        if depots.is_empty() {
            return Err(NetError::InvalidFleet("no depots provided".into()));
        }
        for (name, v) in [
            ("capacity", capacity),
            ("fixed_cost", fixed_cost),
            ("unit_cost", unit_cost),
            ("speed_kmh", speed_kmh),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(NetError::InvalidFleet(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if !service_time.is_non_negative() {
            return Err(NetError::InvalidFleet(
                "service_time must be non-negative".into(),
            ));
        }
        let vehicles = (0..k)
            .map(|i| VehicleConfig {
                id: VehicleId::from_index(i),
                depot: depots[i % depots.len()],
            })
            .collect();
        Ok(FleetConfig {
            vehicles,
            capacity,
            fixed_cost,
            unit_cost,
            speed_kmh,
            service_time,
        })
    }

    /// Number of vehicles `K`.
    #[inline]
    pub fn num_vehicles(&self) -> usize {
        self.vehicles.len()
    }

    /// The configuration of vehicle `k`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn vehicle(&self, k: VehicleId) -> &VehicleConfig {
        &self.vehicles[k.index()]
    }

    /// Travel time for `distance_km` kilometres at the fleet's constant speed.
    #[inline]
    pub fn travel_time(&self, distance_km: f64) -> TimeDelta {
        TimeDelta::from_hours(distance_km / self.speed_kmh)
    }

    /// Batched travel times: `out[i] = travel_time(distances_km[i])`.
    ///
    /// Each element is computed by the exact same expression as
    /// [`FleetConfig::travel_time`] — the per-element division is *not*
    /// rewritten as a multiplication by a hoisted reciprocal — so fused
    /// batch conversion of a distance row (e.g. one produced by
    /// `RoadNetwork::distances_from`) is bit-identical to per-call
    /// conversion. The batching amortizes call overhead and keeps the
    /// divisions in one contiguous loop the compiler can pipeline.
    ///
    /// # Panics
    /// Panics if `out.len() != distances_km.len()`.
    pub fn travel_times(&self, distances_km: &[f64], out: &mut [TimeDelta]) {
        assert_eq!(out.len(), distances_km.len(), "travel_times length mismatch");
        for (o, &d) in out.iter_mut().zip(distances_km) {
            *o = self.travel_time(d);
        }
    }

    /// Batched travel times in raw f64 seconds: `out[i]` equals
    /// `travel_time(distances_km[i]).seconds()`.
    ///
    /// Same bit-identity contract as [`FleetConfig::travel_times`]; the raw
    /// representation feeds hot loops (insertion-sweep leg tables) that do
    /// their time arithmetic in plain `f64` seconds, which round-trips
    /// exactly through `TimeDelta`.
    ///
    /// # Panics
    /// Panics if `out.len() != distances_km.len()`.
    pub fn travel_times_secs(&self, distances_km: &[f64], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            distances_km.len(),
            "travel_times_secs length mismatch"
        );
        for (o, &d) in out.iter_mut().zip(distances_km) {
            *o = self.travel_time(d).seconds();
        }
    }

    /// Validates depot references against a network: every vehicle must start
    /// at an existing depot node.
    pub fn validate_against(&self, net: &RoadNetwork) -> Result<(), NetError> {
        for v in &self.vehicles {
            let node = net.try_node(v.depot)?;
            if !node.is_depot() {
                return Err(NetError::InvalidVehicle {
                    vehicle: v.id,
                    reason: format!("start node {} is not a depot", v.depot),
                });
            }
        }
        Ok(())
    }

    /// Total transportation cost for `nuv` used vehicles travelling `ttl`
    /// kilometres in aggregate: `TC = mu * NUV + delta * TTL`.
    #[inline]
    pub fn total_cost(&self, nuv: usize, ttl: f64) -> f64 {
        self.fixed_cost * nuv as f64 + self.unit_cost * ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Point;
    use crate::node::Node;

    fn fleet(k: usize) -> FleetConfig {
        FleetConfig::homogeneous(
            k,
            &[NodeId(0), NodeId(1)],
            100.0,
            500.0,
            2.0,
            40.0,
            TimeDelta::from_minutes(5.0),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_depot_assignment() {
        let f = fleet(5);
        assert_eq!(f.num_vehicles(), 5);
        assert_eq!(f.vehicle(VehicleId(0)).depot, NodeId(0));
        assert_eq!(f.vehicle(VehicleId(1)).depot, NodeId(1));
        assert_eq!(f.vehicle(VehicleId(2)).depot, NodeId(0));
        assert_eq!(f.vehicle(VehicleId(4)).depot, NodeId(0));
    }

    #[test]
    fn travel_time_uses_constant_speed() {
        let f = fleet(1);
        // 40 km/h -> 20 km takes 30 minutes.
        assert!((f.travel_time(20.0).seconds() - 1800.0).abs() < 1e-9);
        assert_eq!(f.travel_time(0.0), TimeDelta::ZERO);
    }

    #[test]
    fn total_cost_formula() {
        let f = fleet(1);
        assert!((f.total_cost(3, 100.0) - (3.0 * 500.0 + 2.0 * 100.0)).abs() < 1e-12);
        assert_eq!(f.total_cost(0, 0.0), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let depots = [NodeId(0)];
        let st = TimeDelta::ZERO;
        assert!(FleetConfig::homogeneous(1, &[], 1.0, 1.0, 1.0, 1.0, st).is_err());
        assert!(FleetConfig::homogeneous(1, &depots, 0.0, 1.0, 1.0, 1.0, st).is_err());
        assert!(FleetConfig::homogeneous(1, &depots, 1.0, -1.0, 1.0, 1.0, st).is_err());
        assert!(FleetConfig::homogeneous(1, &depots, 1.0, 1.0, 1.0, f64::NAN, st).is_err());
        assert!(FleetConfig::homogeneous(
            1,
            &depots,
            1.0,
            1.0,
            1.0,
            1.0,
            TimeDelta::from_seconds(-1.0)
        )
        .is_err());
    }

    #[test]
    fn validate_against_requires_depot_nodes() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
        ];
        let net = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let ok =
            FleetConfig::homogeneous(2, &[NodeId(0)], 1.0, 1.0, 1.0, 1.0, TimeDelta::ZERO).unwrap();
        assert!(ok.validate_against(&net).is_ok());
        let bad =
            FleetConfig::homogeneous(1, &[NodeId(1)], 1.0, 1.0, 1.0, 1.0, TimeDelta::ZERO).unwrap();
        assert!(bad.validate_against(&net).is_err());
    }
}
