//! Delivery orders.

use crate::error::NetError;
use crate::ids::{NodeId, OrderId};
use crate::network::RoadNetwork;
use crate::time::{TimePoint, TimeWindow};
use serde::{Deserialize, Serialize};

/// A delivery order `o_i = (F_p, F_d, q, t_c, t_l)`: pick up `quantity`
/// units of cargo at `pickup` no earlier than `created`, and deliver them to
/// `delivery` no later than `deadline`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Identifier; equals the order's index within its instance.
    pub id: OrderId,
    /// Pickup node `F_p`.
    pub pickup: NodeId,
    /// Delivery node `F_d`.
    pub delivery: NodeId,
    /// Amount of cargo `q` (same unit as vehicle capacity).
    pub quantity: f64,
    /// Creation time `t_c`, also the earliest pickup time.
    pub created: TimePoint,
    /// Latest delivery time `t_l`.
    pub deadline: TimePoint,
}

impl Order {
    /// Creates an order, validating the basic invariants.
    ///
    /// # Errors
    /// Returns [`NetError::InvalidOrder`] if the quantity is non-positive,
    /// pickup equals delivery, or the deadline precedes the creation time.
    pub fn new(
        id: OrderId,
        pickup: NodeId,
        delivery: NodeId,
        quantity: f64,
        created: TimePoint,
        deadline: TimePoint,
    ) -> Result<Self, NetError> {
        if !(quantity.is_finite() && quantity > 0.0) {
            return Err(NetError::InvalidOrder {
                order: id,
                reason: format!("quantity must be positive and finite, got {quantity}"),
            });
        }
        if pickup == delivery {
            return Err(NetError::InvalidOrder {
                order: id,
                reason: "pickup and delivery nodes must differ".into(),
            });
        }
        if deadline < created {
            return Err(NetError::InvalidOrder {
                order: id,
                reason: format!("deadline {} precedes creation time {}", deadline, created),
            });
        }
        Ok(Order {
            id,
            pickup,
            delivery,
            quantity,
            created,
            deadline,
        })
    }

    /// The order's service window `[t_c, t_l]`.
    pub fn window(&self) -> TimeWindow {
        TimeWindow::new(self.created, self.deadline)
            .expect("order invariants guarantee a valid window")
    }

    /// Validates the order's node references against a network; both nodes
    /// must exist and be factories.
    pub fn validate_against(&self, net: &RoadNetwork) -> Result<(), NetError> {
        for node in [self.pickup, self.delivery] {
            let n = net.try_node(node)?;
            if !n.is_factory() {
                return Err(NetError::InvalidOrder {
                    order: self.id,
                    reason: format!("node {node} is a depot, orders connect factories"),
                });
            }
        }
        Ok(())
    }

    /// Direct pickup-to-delivery distance on the given network.
    pub fn direct_distance(&self, net: &RoadNetwork) -> f64 {
        net.distance(self.pickup, self.delivery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Point;
    use crate::node::Node;

    fn net() -> RoadNetwork {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
        ];
        RoadNetwork::euclidean(nodes, 1.0).unwrap()
    }

    fn order(pickup: u32, delivery: u32) -> Result<Order, NetError> {
        Order::new(
            OrderId(0),
            NodeId(pickup),
            NodeId(delivery),
            5.0,
            TimePoint::from_hours(8.0),
            TimePoint::from_hours(12.0),
        )
    }

    #[test]
    fn valid_order_constructs() {
        let o = order(1, 2).unwrap();
        assert_eq!(o.quantity, 5.0);
        assert!(o.window().contains(TimePoint::from_hours(9.0)));
        assert!((o.direct_distance(&net()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_orders_rejected() {
        assert!(order(1, 1).is_err());
        assert!(Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            0.0,
            TimePoint::ZERO,
            TimePoint::from_hours(1.0)
        )
        .is_err());
        assert!(Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            1.0,
            TimePoint::from_hours(2.0),
            TimePoint::from_hours(1.0)
        )
        .is_err());
        assert!(Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            f64::INFINITY,
            TimePoint::ZERO,
            TimePoint::from_hours(1.0)
        )
        .is_err());
    }

    #[test]
    fn validate_against_checks_node_kind() {
        let n = net();
        assert!(order(1, 2).unwrap().validate_against(&n).is_ok());
        // Pickup at a depot is invalid.
        let bad = Order::new(
            OrderId(0),
            NodeId(0),
            NodeId(2),
            1.0,
            TimePoint::ZERO,
            TimePoint::from_hours(1.0),
        )
        .unwrap();
        assert!(bad.validate_against(&n).is_err());
        // Out-of-range node.
        let bad = Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(9),
            1.0,
            TimePoint::ZERO,
            TimePoint::from_hours(1.0),
        )
        .unwrap();
        assert!(bad.validate_against(&n).is_err());
    }
}
