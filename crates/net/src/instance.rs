//! Complete problem instances: network + fleet + a day of orders.

use crate::error::NetError;
use crate::ids::OrderId;
use crate::network::RoadNetwork;
use crate::order::Order;
use crate::time::IntervalGrid;
use crate::vehicle::FleetConfig;
use serde::{Deserialize, Serialize};

/// A DPDP instance: the road network, the fleet configuration, the interval
/// grid for spatial-temporal features, and the day's delivery orders sorted
/// by creation time.
///
/// In the *dynamic* problem an order only becomes visible to the dispatcher
/// at its creation time; the simulator enforces that. Solvers for the
/// *static* relaxation (the exact baseline) are allowed to read all orders up
/// front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// The road network.
    pub network: RoadNetwork,
    /// Fleet configuration.
    pub fleet: FleetConfig,
    /// Time discretisation used for STD matrices and state features.
    pub grid: IntervalGrid,
    orders: Vec<Order>,
}

impl Instance {
    /// Builds an instance, validating all cross-references and sorting orders
    /// by creation time (ties broken by id). Order ids are re-assigned to be
    /// dense in creation order so that `orders()[i].id.index() == i`.
    ///
    /// # Errors
    /// Returns the first validation error found.
    pub fn new(
        network: RoadNetwork,
        fleet: FleetConfig,
        grid: IntervalGrid,
        mut orders: Vec<Order>,
    ) -> Result<Self, NetError> {
        fleet.validate_against(&network)?;
        for order in &orders {
            order.validate_against(&network)?;
        }
        orders.sort_by(|a, b| {
            a.created
                .seconds()
                .partial_cmp(&b.created.seconds())
                .expect("times are finite")
                .then(a.id.cmp(&b.id))
        });
        for (i, order) in orders.iter_mut().enumerate() {
            order.id = OrderId::from_index(i);
        }
        Ok(Instance {
            network,
            fleet,
            grid,
            orders,
        })
    }

    /// Orders sorted by creation time; `orders()[i].id.index() == i`.
    #[inline]
    pub fn orders(&self) -> &[Order] {
        &self.orders
    }

    /// Number of orders.
    #[inline]
    pub fn num_orders(&self) -> usize {
        self.orders.len()
    }

    /// Number of vehicles `K`.
    #[inline]
    pub fn num_vehicles(&self) -> usize {
        self.fleet.num_vehicles()
    }

    /// The order with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn order(&self, id: OrderId) -> &Order {
        &self.orders[id.index()]
    }

    /// Total cargo quantity across all orders.
    pub fn total_quantity(&self) -> f64 {
        self.orders.iter().map(|o| o.quantity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, OrderId};
    use crate::network::Point;
    use crate::node::Node;
    use crate::time::{TimeDelta, TimePoint};

    fn build() -> Instance {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
            Node::factory(NodeId(2), Point::new(2.0, 0.0)),
        ];
        let network = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(2, &[NodeId(0)], 100.0, 500.0, 2.0, 40.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![
            Order::new(
                OrderId(0),
                NodeId(1),
                NodeId(2),
                5.0,
                TimePoint::from_hours(10.0),
                TimePoint::from_hours(14.0),
            )
            .unwrap(),
            Order::new(
                OrderId(1),
                NodeId(2),
                NodeId(1),
                3.0,
                TimePoint::from_hours(8.0),
                TimePoint::from_hours(12.0),
            )
            .unwrap(),
        ];
        Instance::new(network, fleet, IntervalGrid::paper_default(), orders).unwrap()
    }

    #[test]
    fn orders_sorted_and_reindexed_by_creation_time() {
        let inst = build();
        assert_eq!(inst.num_orders(), 2);
        // The 8:00 order must come first and get id 0.
        assert_eq!(inst.orders()[0].created, TimePoint::from_hours(8.0));
        assert_eq!(inst.orders()[0].id, OrderId(0));
        assert_eq!(inst.orders()[1].id, OrderId(1));
        assert_eq!(inst.order(OrderId(1)).created, TimePoint::from_hours(10.0));
    }

    #[test]
    fn totals() {
        let inst = build();
        assert!((inst.total_quantity() - 8.0).abs() < 1e-12);
        assert_eq!(inst.num_vehicles(), 2);
    }

    #[test]
    fn invalid_cross_reference_rejected() {
        let nodes = vec![
            Node::depot(NodeId(0), Point::new(0.0, 0.0)),
            Node::factory(NodeId(1), Point::new(1.0, 0.0)),
        ];
        let network = RoadNetwork::euclidean(nodes, 1.0).unwrap();
        let fleet =
            FleetConfig::homogeneous(1, &[NodeId(0)], 100.0, 500.0, 2.0, 40.0, TimeDelta::ZERO)
                .unwrap();
        let orders = vec![Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(7),
            5.0,
            TimePoint::ZERO,
            TimePoint::from_hours(1.0),
        )
        .unwrap()];
        assert!(Instance::new(network, fleet, IntervalGrid::paper_default(), orders).is_err());
    }
}
