//! Property-based tests for the core problem types.

use dpdp_net::*;
use proptest::prelude::*;

fn arb_points(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n..=n)
}

fn network_from(points: &[(f64, f64)], detour: f64) -> RoadNetwork {
    let nodes: Vec<Node> = points
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            if i == 0 {
                Node::depot(NodeId::from_index(i), Point::new(x, y))
            } else {
                Node::factory(NodeId::from_index(i), Point::new(x, y))
            }
        })
        .collect();
    RoadNetwork::euclidean(nodes, detour).unwrap()
}

proptest! {
    /// Euclidean networks satisfy metric axioms: zero diagonal, symmetry,
    /// triangle inequality (all scaled by the same detour factor).
    #[test]
    fn euclidean_network_is_metric(pts in arb_points(6), detour in 1.0f64..2.0) {
        let net = network_from(&pts, detour);
        let n = net.num_nodes();
        for i in 0..n {
            let ni = NodeId::from_index(i);
            prop_assert_eq!(net.distance(ni, ni), 0.0);
            for j in 0..n {
                let nj = NodeId::from_index(j);
                prop_assert!((net.distance(ni, nj) - net.distance(nj, ni)).abs() < 1e-9);
                for k in 0..n {
                    let nk = NodeId::from_index(k);
                    prop_assert!(
                        net.distance(ni, nk) <= net.distance(ni, nj) + net.distance(nj, nk) + 1e-9
                    );
                }
            }
        }
    }

    /// Path length is additive over concatenation.
    #[test]
    fn path_length_is_additive(pts in arb_points(5)) {
        let net = network_from(&pts, 1.0);
        let a = [NodeId(0), NodeId(1), NodeId(2)];
        let b = [NodeId(2), NodeId(3), NodeId(4)];
        let joined = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let sum = net.path_length(&a) + net.path_length(&b);
        prop_assert!((net.path_length(&joined) - sum).abs() < 1e-9);
    }

    /// Interval mapping is total, in-range, and monotone in time.
    #[test]
    fn interval_grid_is_monotone(
        horizon_h in 1.0f64..48.0,
        n in 1usize..500,
        times in proptest::collection::vec(0.0f64..200_000.0, 2..20),
    ) {
        let grid = IntervalGrid::new(TimeDelta::from_hours(horizon_h), n);
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0usize;
        for (i, &t) in sorted.iter().enumerate() {
            let idx = grid.interval_of(TimePoint::from_seconds(t));
            prop_assert!(idx < n);
            if i > 0 {
                prop_assert!(idx >= prev, "interval_of must be monotone");
            }
            prev = idx;
        }
    }

    /// `interval_start` is a left inverse of `interval_of`.
    #[test]
    fn interval_start_left_inverse(n in 1usize..300, idx_frac in 0.0f64..1.0) {
        let grid = IntervalGrid::new(TimeDelta::from_hours(24.0), n);
        let idx = ((n as f64 - 1.0) * idx_frac) as usize;
        prop_assert_eq!(grid.interval_of(grid.interval_start(idx)), idx);
    }

    /// Orders constructed with valid parameters always produce valid
    /// windows containing their creation time.
    #[test]
    fn order_window_contains_creation(
        q in 0.1f64..100.0,
        created_h in 0.0f64..24.0,
        slack_h in 0.0f64..24.0,
    ) {
        let o = Order::new(
            OrderId(0),
            NodeId(1),
            NodeId(2),
            q,
            TimePoint::from_hours(created_h),
            TimePoint::from_hours(created_h + slack_h),
        ).unwrap();
        prop_assert!(o.window().contains(o.created));
        prop_assert!(o.window().contains(o.deadline));
        prop_assert!((o.window().length().seconds() - slack_h * 3600.0).abs() < 1e-6);
    }

    /// Fleet cost is linear in both NUV and TTL.
    #[test]
    fn fleet_cost_linearity(
        mu in 1.0f64..1000.0,
        delta in 0.1f64..10.0,
        nuv in 0usize..100,
        ttl in 0.0f64..10_000.0,
    ) {
        let fleet = FleetConfig::homogeneous(
            1, &[NodeId(0)], 10.0, mu, delta, 40.0, TimeDelta::ZERO,
        ).unwrap();
        let base = fleet.total_cost(nuv, ttl);
        prop_assert!((fleet.total_cost(nuv + 1, ttl) - base - mu).abs() < 1e-9);
        prop_assert!((fleet.total_cost(nuv, ttl + 1.0) - base - delta).abs() < 1e-9);
    }

    /// Instances sort orders by creation time with dense ids, for any
    /// shuffled input.
    #[test]
    fn instance_sorts_and_reindexes(times in proptest::collection::vec(0.0f64..86_000.0, 1..20)) {
        let net = network_from(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)], 1.0);
        let fleet = FleetConfig::homogeneous(
            2, &[NodeId(0)], 10.0, 100.0, 1.0, 40.0, TimeDelta::ZERO,
        ).unwrap();
        let orders: Vec<Order> = times.iter().enumerate().map(|(i, &t)| {
            Order::new(
                OrderId(i as u32),
                NodeId(1),
                NodeId(2),
                1.0,
                TimePoint::from_seconds(t),
                TimePoint::from_seconds(t + 3600.0),
            ).unwrap()
        }).collect();
        let inst = Instance::new(net, fleet, IntervalGrid::paper_default(), orders).unwrap();
        for (i, o) in inst.orders().iter().enumerate() {
            prop_assert_eq!(o.id.index(), i);
            if i > 0 {
                prop_assert!(o.created >= inst.orders()[i - 1].created);
            }
        }
    }
}
