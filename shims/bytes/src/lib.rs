//! Offline stand-in for the slice of `bytes` this workspace uses:
//! little-endian puts/gets over growable byte buffers, for the `dpdp-nn`
//! checkpoint format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with the given capacity reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

/// Write-side buffer operations (little-endian variants only).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations over an advancing cursor.
///
/// # Panics
/// The `get_*` / `copy_to_slice` methods panic when fewer than the required
/// bytes remain, mirroring upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor without reading.
    fn advance(&mut self, cnt: usize);

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"HDR!");
        buf.put_u32_le(7);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 16);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
