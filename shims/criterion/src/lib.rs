//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Runs each benchmark closure for a fixed, small number of timed
//! iterations and prints the mean wall time — a smoke bench that keeps the
//! `benches/` targets compiling and runnable without the real statistics
//! engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver (API stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        run_one("", 10, &name.to_string(), f);
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&self.name, self.sample_size, &id.to_string(), f);
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, self.sample_size, &id.to_string(), |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    total_nanos: u128,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing each.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, sample_size: usize, id: &str, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        total_nanos: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mean = bencher.total_nanos / bencher.iterations.max(1) as u128;
    println!(
        "bench {label}: {:.3} ms/iter over {} iterations",
        mean as f64 / 1e6,
        bencher.iterations
    );
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("plain", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("with", 7), &3, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran >= 2);
        assert_eq!(BenchmarkId::new("a", 5).to_string(), "a/5");
    }
}
