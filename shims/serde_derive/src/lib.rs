//! No-op `Serialize` / `Deserialize` derive macros (offline serde shim).
//!
//! The workspace derives these traits for documentation/value-type hygiene
//! but never serialises through serde (checkpointing uses `dpdp-nn`'s own
//! binary format), so empty expansions are sufficient.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
