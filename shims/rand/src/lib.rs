//! Offline stand-in for the slice of `rand` this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a xoshiro256** generator seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over half-open and inclusive integer/float
//! ranges. Streams are deterministic per seed but do **not** match upstream
//! `rand`; everything in-repo treats the RNG as an arbitrary deterministic
//! source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable pseudo-random generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods (the shim's take on `rand::Rng`).
pub trait RngExt {
    /// Advances the generator and returns the next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

/// Pseudo-random number generators.
pub mod rngs {
    use super::SeedableRng;

    /// A deterministic xoshiro256** generator (API stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next 64 raw bits (xoshiro256**).
        pub fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 1;
            }
            StdRng { s }
        }
    }
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.draw(self)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn draw(self, rng: &mut rngs::StdRng) -> Self::Output;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn draw(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_raw());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn draw(self, rng: &mut rngs::StdRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty inclusive f64 range");
        a + unit_f64(rng.next_raw()) * (b - a)
    }
}

fn uniform_below(rng: &mut rngs::StdRng, n: u64) -> u64 {
    assert!(n > 0, "empty integer range");
    // Rejection sampling over the widest multiple of `n` to avoid modulo
    // bias.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_raw();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn draw(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn draw(self, rng: &mut rngs::StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty inclusive integer range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return rng.next_raw() as $t;
                }
                a + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(5u64..=5);
            assert_eq!(j, 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
