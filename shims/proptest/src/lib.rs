//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro form used in the repo's property tests:
//! range and tuple strategies, `prop_map`, `collection::{vec, btree_set}`,
//! `bool::ANY`, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`. Failing inputs are reported but **not
//! shrunk**, and `prop_assume` skips the case rather than re-drawing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    mod ranges {
        use super::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;
        use std::ops::{Range, RangeInclusive};

        macro_rules! impl_range_strategies {
            ($($t:ty),*) => {$(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut StdRng) -> $t {
                        rng.random_range(self.clone())
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut StdRng) -> $t {
                        rng.random_range(self.clone())
                    }
                }
            )*};
        }

        impl_range_strategies!(f64, usize, u64, u32, u16, u8);
    }

    macro_rules! impl_tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (best effort when the element space is small).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates ordered sets of `element` values with sizes in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Generates `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random_range(0u32..2) == 1
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the per-test RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trades coverage for test
            // wall time.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the failure message). Property
    /// bodies propagate it with `?`; the runner converts it into the
    /// panic message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps any displayable failure reason.
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError(reason.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<TestCaseError> for String {
        fn from(e: TestCaseError) -> String {
            e.0
        }
    }

    /// Deterministic per-test RNG, seeded from the test's name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` usage.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each function runs `config.cases` random cases;
/// a failing case panics with the captured assertion message (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property '{}' failed on case {}: {}", stringify!($name), case, message);
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its precondition fails (the shim counts the
/// case as passed instead of re-drawing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50, 1usize..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes((a, b) in arb_pair()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn mapped_strategies_apply(v in crate::collection::vec(0usize..10, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            for x in v {
                prop_assert!(x < 10, "element {x} out of range");
            }
        }

        #[test]
        fn assume_skips_without_failing(n in 0usize..10) {
            prop_assume!(n > 4);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn sets_respect_sizes() {
        let mut rng = crate::test_runner::rng_for("sets");
        let s = crate::collection::btree_set(0u32..1000, 5..10);
        for _ in 0..20 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!(v.len() >= 5 && v.len() < 10);
        }
    }
}
