//! Offline stand-in for `serde`: only the derive macros, as no code in this
//! workspace serialises through serde (see shims/README.md).

pub use serde_derive::{Deserialize, Serialize};
